"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the headline reproductions without writing
Python:

* ``truth-table maj3|xor|maj5|and|or|nand|nor|xnor`` -- evaluate a gate
  on all input patterns (network tier);
* ``table1`` / ``table2`` / ``table3`` -- print the reproduced paper
  tables;
* ``design [--wavelength-nm X]`` -- gate dimensions and operating point
  for a given wavelength;
* ``adder WIDTH`` -- circuit-level comparison of an n-bit adder;
* ``sweep maj3|xor`` -- the full 2^n truth-table grid through the
  orchestration engine (:mod:`repro.runtime`): parallel across input
  patterns, content-addressed-cached across invocations; with
  ``--resume`` (and optionally ``--journal PATH``) a killed sweep
  restarts from its write-ahead job journal, skipping completed jobs
  (see docs/RESILIENCE.md);
* ``profile maj3|xor [--tier ...]`` -- run one gate case under the
  span tracer (:mod:`repro.obs`) and print the top spans by
  cumulative time;
* ``serve [--port --workers --max-queue --rate ...]`` -- the HTTP
  gate-evaluation service (:mod:`repro.serve`): single-flight
  coalescing, micro-batching, 429 backpressure, ``/metrics`` and
  graceful drain on SIGTERM; ``--prefork N`` forks N SO_REUSEPORT
  processes on one port, ``--backend tcp://...`` runs solver tiers on
  a cluster;
* ``cluster start|status|stop`` -- run or inspect a
  :mod:`repro.cluster` coordinator that shards sweep jobs over TCP
  workers with a shared cache, single-flight brokering and
  heartbeat-based rescheduling (docs/CLUSTER.md);
* ``worker tcp://HOST:PORT [--capacity N]`` -- join a coordinator and
  execute its jobs;
* ``characterize maj3|xor [--axis NAME=V1,V2,...]`` -- sweep a gate
  over the characterization axes through the engine, store the
  records content-addressed (:mod:`repro.surrogate`), fit the
  surrogate model and save it where the ``surrogate`` tier loads it;
* ``cache stats|prune [--max-bytes N] [--json]`` -- inspect the
  on-disk result cache (``--json`` prints the machine-readable usage
  report, quarantine counts included) or evict least-recently-used
  entries down to a byte budget;
* ``bench report|compare`` -- sparkline history of the accumulated
  benchmark trajectory, and a regression gate (exit 1 when the latest
  commit moved a metric beyond ``--threshold`` against the rolling
  baseline of earlier commits).  A missing/empty trajectory prints a
  clear pointer and exits 0 from ``report`` (nothing to show) but
  exits 3 from ``compare`` (``EXIT_NO_TRAJECTORY``) so CI can tell
  "no data yet" from "no regressions";
* ``debug dump`` -- print the most recent flight-recorder dump (the
  last-N-events black box written on crashes,
  ``NumericalDivergenceError`` and SIGUSR2);
* ``compile SPEC [--characterize]`` -- the spin-wave circuit compiler
  (:mod:`repro.compiler`): synthesize an arbitrary boolean function
  (builtin name, inline JSON spec, equation list like
  ``'s = a ^ b; c = maj(a, b, 0)'``, or a spec file) into a placed
  triangle-gate fabric, design-rule check it, and optionally push it
  through the energy/delay/error-rate characterizer (exit 1 on DRC
  violations; see docs/COMPILER.md).

Global flags (before the subcommand): ``--workers N`` fans cache
misses out over N worker processes (0 = one per CPU); ``--no-cache``
disables the on-disk result cache; ``--trace FILE`` writes a span
trace of the command (Chrome trace-event JSON for Perfetto, or a JSONL
span log when FILE ends in ``.jsonl``); ``--log-level LEVEL`` turns on
``repro`` logging; ``--version`` prints the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_truth_table(args: argparse.Namespace) -> int:
    from .core import DerivedTriangleGate, TriangleMajorityGate, TriangleXorGate
    from .core.extended import TriangleMajority5Gate
    from .core.logic import input_patterns
    from .io import format_truth_table

    name = args.gate.lower()
    if name == "maj3":
        gate = TriangleMajorityGate()
        n = 3
        evaluate = lambda bits: gate.evaluate(bits).outputs
    elif name == "nmaj3":
        gate = TriangleMajorityGate(invert_output=True)
        n = 3
        evaluate = lambda bits: gate.evaluate(bits).outputs
    elif name == "xor":
        gate = TriangleXorGate()
        n = 2
        evaluate = lambda bits: gate.evaluate(bits).outputs
    elif name == "xnor":
        gate = TriangleXorGate(xnor=True)
        n = 2
        evaluate = lambda bits: gate.evaluate(bits).outputs
    elif name == "maj5":
        gate = TriangleMajority5Gate()
        n = 5
        evaluate = gate.evaluate
    elif name in ("and", "or", "nand", "nor"):
        gate = DerivedTriangleGate(name)
        n = 2
        evaluate = lambda bits: gate.evaluate(*bits).outputs
    else:
        print(f"unknown gate {args.gate!r}; choose from maj3, nmaj3, "
              "xor, xnor, maj5, and, or, nand, nor", file=sys.stderr)
        return 2

    patterns = input_patterns(n)
    rows = []
    for bits in patterns:
        outputs = evaluate(bits)
        rows.append([outputs["O1"].logic_value,
                     outputs["O2"].logic_value])
    print(format_truth_table(patterns, ["O1", "O2"], rows,
                             [f"I{i + 1}" for i in range(n)],
                             title=f"{args.gate.upper()} "
                                   "(triangle FO2, network tier)"))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .core import PAPER_TABLE_I, paper_table_i_gate
    from .core.logic import input_patterns
    from .io import format_truth_table

    table = paper_table_i_gate().normalized_output_table()
    patterns = sorted(input_patterns(3), key=lambda b: (b[2], b[1], b[0]))
    rows = [[f"{table[b][0]:.3f}", f"{table[b][1]:.3f}",
             str(PAPER_TABLE_I[b][0]), str(PAPER_TABLE_I[b][1])]
            for b in patterns]
    print(format_truth_table(
        [tuple(reversed(b)) for b in patterns],
        ["O1 (ours)", "O2 (ours)", "O1 (paper)", "O2 (paper)"],
        rows, ["I3", "I2", "I1"],
        title="TABLE I -- FO2 MAJ3 normalised outputs"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .core import PAPER_TABLE_II, paper_table_ii_gate
    from .core.logic import input_patterns
    from .io import format_truth_table

    table = paper_table_ii_gate().normalized_output_table()
    patterns = sorted(input_patterns(2), key=lambda b: (b[1], b[0]))
    rows = [[f"{table[b][0]:.3f}", f"{table[b][1]:.3f}",
             str(PAPER_TABLE_II[b][0]), str(PAPER_TABLE_II[b][1])]
            for b in patterns]
    print(format_truth_table(
        [tuple(reversed(b)) for b in patterns],
        ["O1 (ours)", "O2 (ours)", "O1 (paper)", "O2 (paper)"],
        rows, ["I2", "I1"],
        title="TABLE II -- FO2 XOR normalised outputs"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .evaluation import format_table_iii, headline_ratios

    print(format_table_iii())
    print()
    for name, value in headline_ratios().as_dict().items():
        if "saving" in name:
            print(f"  {name}: {value * 100:.0f} %")
        else:
            print(f"  {name}: {value:.1f}x")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    import math

    from .core import paper_maj3_dimensions, paper_xor_dimensions
    from .physics import FECOB, DispersionRelation, FilmStack

    lam = args.wavelength_nm * 1e-9
    width = min(0.9 * lam, 50e-9) if args.wavelength_nm != 55 else 50e-9
    maj = paper_maj3_dimensions(wavelength=lam, width=width)
    xor = paper_xor_dimensions(wavelength=lam, width=width)
    film = FilmStack(material=FECOB, thickness=1e-9)
    disp = DispersionRelation(film)
    k = 2.0 * math.pi / lam
    print(f"design wavelength : {lam * 1e9:.1f} nm "
          f"(k = {k * 1e-6:.1f} rad/um)")
    print(f"waveguide width   : {width * 1e9:.1f} nm")
    print(f"frequency (KS)    : {float(disp.frequency(k)) / 1e9:.2f} GHz "
          f"on 1 nm Fe60Co20B20")
    print(f"group velocity    : {float(disp.group_velocity(k)):.0f} m/s")
    print(f"attenuation length: "
          f"{float(disp.attenuation_length(k)) * 1e6:.2f} um")
    print("MAJ3 dimensions   : "
          f"d1 = {maj.d1 * 1e9:.0f} nm, d2 = {maj.d2 * 1e9:.0f} nm, "
          f"d3 = {maj.d3 * 1e9:.0f} nm, d4 = {maj.d4 * 1e9:.0f} nm, "
          f"stem = {maj.stem * 1e9:.0f} nm")
    print(f"XOR dimensions    : d1 = {xor.d1 * 1e9:.0f} nm, "
          f"output offset = {xor.d2_xor * 1e9:.0f} nm")
    return 0


def _cmd_adder(args: argparse.Namespace) -> int:
    from .evaluation.circuit_level import adder_comparison, format_comparison

    figures = adder_comparison(args.width)
    print(f"{args.width}-bit ripple-carry adder comparison")
    print(format_comparison(figures))
    sw = figures["SW (this work)"]
    c7 = figures["7nm CMOS"]
    print(f"\nSW vs 7nm CMOS: energy {c7.energy / sw.energy:.2f}x, "
          f"delay {sw.delay / c7.delay:.1f}x slower, "
          f"area x energy {c7.area_delay_power_product / sw.area_delay_power_product:.1f}x better")
    return 0


def _build_tls(args: argparse.Namespace):
    """Resolve ``--tls-cert/--tls-key/--tls-ca`` into a TlsConfig.

    Returns ``None`` when no TLS flag was given; raises
    :class:`~repro.errors.ClusterConfigError` on a partial pair or
    missing PEM files (callers map it to exit code 2).
    """
    from .cluster import tls_config

    return tls_config(cert=getattr(args, "tls_cert", None),
                      key=getattr(args, "tls_key", None),
                      ca=getattr(args, "tls_ca", None))


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from .errors import ClusterConfigError
    from .micromag.experiments import sweep_gate_truth_table
    from .resilience import JobJournal
    from .runtime import DiskCache, Executor, JobFailed, create_backend

    try:
        tls = _build_tls(args)
        backend = create_backend(args.backend, secret=args.secret,
                                 tls=tls)
        if args.backend and args.backend.startswith("tcp://"):
            # Fail fast with a typed, actionable error -- not a socket
            # traceback mid-sweep -- when the coordinator is down or
            # has no workers attached.
            from .cluster import ClusterClient

            with ClusterClient(args.backend, secret=args.secret,
                               tls=tls) as client:
                n = client.require_ready()
            print(f"cluster backend {args.backend}: {n} worker(s) ready")
    except ClusterConfigError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else DiskCache(root=args.cache_dir)
    journal = None
    if args.resume or args.journal:
        journal_path = args.journal or os.path.join(
            args.cache_dir, f"journal-{args.gate}-{args.tier}.jsonl")
        journal = JobJournal(journal_path, resume=args.resume)
        if args.resume:
            print(f"resuming from {journal_path}: "
                  f"{journal.state.summary()}")
    executor = Executor(workers=args.workers, cache=cache,
                        timeout=args.timeout, retries=args.retries,
                        journal=journal, backend=backend)
    try:
        sweep = sweep_gate_truth_table(args.gate, tier=args.tier,
                                       executor=executor)
    except JobFailed as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if journal is not None:
            journal.close()
    print(sweep.format_table())
    print()
    print(sweep.report.format_table())
    print()
    print(sweep.report.summary())
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats.hits} hits / {stats.misses} misses "
              f"({stats.hit_rate * 100:.0f} % hit rate), "
              f"{stats.writes} writes"
              + (f", {stats.quarantined} quarantined"
                 if stats.quarantined else ""))
    else:
        print("cache: disabled")
    if journal is not None:
        print(f"journal: {journal.path} ({journal.state.summary()})")
    if args.json:
        sweep.report.dump_json(args.json)
        print(f"telemetry written to {args.json}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    import json
    import os

    from .runtime import DiskCache, Executor, JobFailed
    from .surrogate import (
        AxisSpec,
        CharacterizationStore,
        characterize,
        fit_surrogate,
    )

    axes = None
    if args.axis:
        parsed = []
        for text in args.axis:
            name, _, values = text.partition("=")
            if not values:
                print(f"characterize: bad --axis {text!r}; expected "
                      "NAME=V1,V2,...", file=sys.stderr)
                return 2
            try:
                parsed.append(AxisSpec(
                    name.strip(),
                    tuple(float(v) for v in values.split(","))))
            except ValueError as exc:
                print(f"characterize: {exc}", file=sys.stderr)
                return 2
        axes = tuple(parsed)

    store = CharacterizationStore(args.store)
    dataset = store.dataset(args.gate, tier=args.tier, axes=axes,
                            n_trials=args.n_trials)
    cache = None if args.no_cache else DiskCache(root=args.cache_dir)
    executor = Executor(workers=args.workers, cache=cache)
    known = len(dataset.records())
    print(f"characterizing {args.gate}@{args.tier}: "
          f"{dataset.grid_size} grid corners "
          f"({known} already on disk) -> {dataset.directory}")
    try:
        records = characterize(dataset, executor=executor)
    except JobFailed as exc:
        print(f"characterize failed: {exc}", file=sys.stderr)
        return 1
    model = fit_surrogate(records.values(), kind=args.kind,
                          residual_threshold=args.residual_threshold)
    path = args.model or store.model_path(args.gate)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    model.save(path)
    max_residual = float(model.residual.max()) if model.residual.size \
        else 0.0
    print(f"fitted {args.kind} surrogate over {len(records)} records "
          f"({len(model.response_names)} responses) in "
          f"{model.meta['fit_ms']:.1f} ms; "
          f"max leave-one-out residual {max_residual:.4g} "
          f"(threshold {args.residual_threshold:g})")
    print(f"model saved to {path} "
          f"(the surrogate tier loads it from there; set "
          f"REPRO_SURROGATE_DIR={args.store} if it is not the default)")
    if args.json:
        summary = {
            "gate": args.gate, "tier": args.tier,
            "dataset_id": dataset.id, "directory": dataset.directory,
            "grid_size": dataset.grid_size, "n_records": len(records),
            "kind": args.kind, "fit_ms": model.meta["fit_ms"],
            "max_residual": max_residual,
            "residual_threshold": args.residual_threshold,
            "responses": len(model.response_names),
            "model_path": path,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs
    from .micromag.experiments import GATE_ARITY, run_gate_case

    arity = GATE_ARITY[args.gate]
    bits_text = args.bits if args.bits is not None else "1" * arity
    if len(bits_text) != arity or set(bits_text) - {"0", "1"}:
        print(f"profile: --bits must be {arity} binary digits for "
              f"{args.gate}, got {bits_text!r}", file=sys.stderr)
        return 2
    bits = tuple(int(c) for c in bits_text)

    # Under a global ``--trace`` the observer is already attached and
    # owned by main(); otherwise attach one for the duration.
    own_observer = not obs.enabled()
    if own_observer:
        obs.enable()
    try:
        with obs.span("profile", gate=args.gate, tier=args.tier,
                      bits=bits_text):
            case = run_gate_case(args.gate, bits, tier=args.tier)
        outputs = " ".join(
            f"{name}={case['outputs'][name]['logic']}"
            for name in sorted(case["outputs"]))
        verdict = "correct" if case["correct"] else "WRONG"
        print(f"{args.gate.upper()} {bits_text} @ {args.tier} tier: "
              f"{outputs} (expected {case['expected']}, {verdict})")
        print()
        print(obs.format_span_summary(obs.spans(), top=args.top))
        counters = obs.metrics_snapshot()["counters"]
        if counters:
            print()
            print("counters: " + ", ".join(
                f"{name}={value}" for name, value in counters.items()))
    finally:
        if own_observer:
            obs.drain_spans()
            obs.disable()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .errors import ClusterConfigError
    from .serve import GateService, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        batch_window_ms=args.batch_window_ms, batch_max=args.batch_max,
        timeout=args.timeout, access_log=args.access_log,
        drain_timeout=args.drain_timeout,
        deadline_s=args.deadline_s,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s,
        surrogate_dir=args.surrogate_dir,
        backend=args.backend, prefork=args.prefork)
    try:
        if config.prefork:
            from .serve import run_prefork

            return run_prefork(config)
        return GateService(config).run()
    except ClusterConfigError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


def _cmd_worker(args: argparse.Namespace) -> int:
    from .errors import ClusterAuthError, ClusterConfigError
    from .cluster import run_worker

    try:
        run_worker(args.url, secret=args.secret, capacity=args.capacity,
                   name=args.name or "",
                   dial_timeout=args.dial_timeout,
                   dial_backoff=args.dial_backoff,
                   reconnect_window=args.reconnect_window,
                   tls=_build_tls(args))
    except ClusterConfigError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    except ClusterAuthError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from .errors import ClusterAuthError, ClusterConfigError, ClusterError
    from .io.tables import format_table

    try:
        tls = _build_tls(args)
    except ClusterConfigError as exc:
        print(f"cluster {args.action}: {exc}", file=sys.stderr)
        return 2

    if args.action == "supervise":
        from .cluster import run_supervised

        try:
            return run_supervised(
                host=args.host, port=args.port,
                cache_dir=None if args.no_cache else args.cache_dir,
                journal_path=args.journal, secret=args.secret,
                retries=args.retries,
                heartbeat_timeout=args.heartbeat_timeout, tls=tls,
                max_restarts=args.max_restarts, pid_file=args.pid_file)
        except ClusterConfigError as exc:
            print(f"cluster supervise: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            return 0

    if args.action == "start":
        from .cluster import Coordinator
        from .resilience import JobJournal
        from .runtime import DiskCache

        cache = None if args.no_cache else DiskCache(root=args.cache_dir)
        journal = None
        if args.journal:
            # resume=True: a restarted coordinator replays the journal
            # instead of truncating it, requeueing interrupted jobs.
            journal = JobJournal(args.journal, resume=True)
        coordinator = Coordinator(
            host=args.host, port=args.port, cache=cache, journal=journal,
            secret=args.secret, retries=args.retries,
            heartbeat_timeout=args.heartbeat_timeout, tls=tls)
        print(f"cluster coordinator on {coordinator.url} "
              f"(cache={'off' if cache is None else args.cache_dir}, "
              f"journal={args.journal or 'off'}); workers join with:\n"
              f"  python -m repro worker {coordinator.url}")
        replayed = coordinator.journal_replayed
        if replayed["completed"] or replayed["interrupted"]:
            print(f"journal replay: {replayed['completed']} completed, "
                  f"{replayed['interrupted']} interrupted job(s) "
                  f"requeued")
        try:
            coordinator.serve_forever()
        finally:
            if journal is not None:
                journal.close()
        return 0

    from .cluster import ClusterClient

    if not args.url:
        print(f"cluster {args.action}: coordinator URL required, e.g. "
              f"python -m repro cluster {args.action} tcp://127.0.0.1:7421",
              file=sys.stderr)
        return 2
    try:
        with ClusterClient(args.url, secret=args.secret,
                           tls=tls) as client:
            if args.action == "stop":
                client.shutdown()
                print(f"coordinator at {args.url} asked to stop")
                return 0
            status = client.status()
    except (ClusterConfigError, ClusterAuthError, ClusterError) as exc:
        print(f"cluster {args.action}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"coordinator {status['url']}: up {status['uptime_s']:.0f} s, "
          f"{len(status['workers'])} worker(s)")
    print(f"jobs: {status['inflight']} inflight, {status['queued']} "
          f"queued (depth {status.get('queue_depth', 0)}), "
          f"{status['completed']} completed, "
          f"{status['failed']} failed, {status['rescheduled']} "
          f"rescheduled, {status['coalesced']} coalesced, "
          f"{status['cache_hits']} cache hits")
    replayed = status.get("journal_replayed") or {}
    if replayed.get("completed") or replayed.get("interrupted"):
        print(f"journal replay: {replayed['completed']} completed, "
              f"{replayed['interrupted']} interrupted")
    if status["workers"]:
        rows = [[str(w["id"]), w["name"], w["addr"], str(w["capacity"]),
                 str(w["inflight"]), str(w["jobs_done"]),
                 f"{w['last_heartbeat_age_s']:.2f}"]
                for w in status["workers"]]
        print(format_table(
            ["id", "name", "addr", "cap", "inflight", "done", "beat (s)"],
            rows, title="workers"))
    return 0


def _parse_size(text: str) -> int:
    """Byte count with optional K/M/G suffix (binary units)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = text.strip().lower().rstrip("b")
    factor = 1
    if text and text[-1] in units:
        factor = units[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r}; use e.g. 500000, 500K, 64M, 2G")


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .io.tables import format_table
    from .runtime.cache import cache_stats, prune_cache

    if args.json and args.action != "stats":
        print("cache: --json only applies to 'stats'", file=sys.stderr)
        return 2
    if args.action == "prune":
        if args.max_bytes is None:
            print("cache prune: --max-bytes is required "
                  "(0 empties the cache)", file=sys.stderr)
            return 2
        result = prune_cache(args.cache_dir, args.max_bytes)
        print(f"pruned {result.removed} of {result.scanned} entries "
              f"({result.freed_bytes} bytes freed); "
              f"{result.kept} entries / {result.kept_bytes} bytes kept")
        return 0

    usage = cache_stats(args.cache_dir)
    if args.json:
        print(json.dumps(usage.as_dict(), indent=2, sort_keys=True))
        return 0
    rows = [[salt, str(n), f"{size / 1024:.1f}"]
            for salt, (n, size) in sorted(usage.by_salt.items())]
    rows.append(["total", str(usage.entries),
                 f"{usage.total_bytes / 1024:.1f}"])
    print(format_table(["salt", "entries", "KiB"], rows,
                       title=f"result cache at {usage.root}"))
    print(f"quarantined entries: {usage.quarantined}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    import json
    import os

    from .compiler import DesignRules, compile_spec, write_report
    from .runtime.cache import atomic_write

    if args.report is not None and not args.characterize:
        print("compile: --report requires --characterize",
              file=sys.stderr)
        return 2
    overrides = {}
    if args.rules is not None:
        text = args.rules
        if not text.strip().startswith("{") and os.path.exists(text):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            parsed = json.loads(text)
        except ValueError as exc:
            print(f"compile: bad --rules JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(parsed, dict):
            print("compile: --rules must be a JSON object",
                  file=sys.stderr)
            return 2
        overrides.update(parsed)
    for name in ("gate_clearance", "row_clearance", "col_clearance"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    try:
        rules = DesignRules.from_dict(overrides) if overrides else None
    except (TypeError, ValueError) as exc:
        print(f"compile: bad rule deck: {exc}", file=sys.stderr)
        return 2

    executor = None
    if args.characterize:
        from .runtime import DiskCache, Executor

        cache = None if args.no_cache else DiskCache(root=args.cache_dir)
        executor = Executor(workers=args.workers, cache=cache)
    try:
        result = compile_spec(args.spec, rules=rules,
                              characterize_circuit=args.characterize,
                              tier=args.tier, executor=executor,
                              raise_on_violation=False)
    except ValueError as exc:
        print(f"compile: {exc}", file=sys.stderr)
        return 2

    stats = result.placement.stats()
    kinds = ", ".join(f"{kind} x{count}"
                      for kind, count in stats["gate_kinds"].items())
    print(f"compiled {result.spec.name!r}: {stats['gates']} gates "
          f"({kinds}), {stats['columns']} columns, "
          f"{stats['wires']} wires")
    print(f"fabric: {stats['width_lambda']:.0f} x "
          f"{stats['height_lambda']:.0f} lambda "
          f"({stats['area_um2']:.3f} um^2), wire length "
          f"{stats['wire_length_lambda']:.0f} lambda")
    drc = result.drc
    if drc.clean:
        print(f"DRC: clean ({len(drc.checks_run)} checks, "
              f"{drc.crossings} crossings)")
    else:
        print(f"DRC: {len(drc.violations)} violation(s)")
        for violation in drc.violations:
            print(f"  {violation}")

    if result.characterization is not None:
        report = result.characterization
        functional = report.functional
        verdict = ("equivalent" if functional["equivalent"]
                   else f"{len(functional['mismatches'])} MISMATCHES")
        print(f"functional: {verdict} over "
              f"{functional['patterns']} patterns")
        sw = report.spin_wave
        print(f"spin wave: energy {sw['energy_j']:.3e} J, delay "
              f"{sw['delay_s'] * 1e9:.2f} ns, area {sw['area_m2']:.3e} m^2")
        rates = report.error_rates
        print(f"error rate @ {rates['tier']} tier: "
              f"{rates['circuit_error_rate']:.4f}")
        if args.report is not None:
            write_report(report, args.report)
            print(f"characterization report written to {args.report}")

    if args.out is not None:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        atomic_write(args.out,
                     lambda handle: handle.write(payload.encode("utf-8")))
        print(f"compile result written to {args.out}")
    return 0 if drc.clean else 1


#: ``bench compare`` exit code when there is no trajectory to gate on.
#: Distinct from 0 ("no regressions") and 1 ("regressed") so CI can
#: treat a first-run repo as skip-not-pass.  ``bench report`` still
#: exits 0 on an empty trajectory: an empty report is a valid report.
EXIT_NO_TRAJECTORY = 3


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs import trajectory

    records = trajectory.load_trajectory(args.trajectory)
    if not records:
        print(f"bench {args.action}: no trajectory at {args.trajectory} "
              "(run any benchmarks/bench_*.py to start one)")
        return 0 if args.action == "report" else EXIT_NO_TRAJECTORY
    comparisons = trajectory.compare(records, threshold=args.threshold,
                                     baseline_window=args.baseline_window,
                                     bench=args.bench)
    print(trajectory.format_report(
        comparisons,
        title=f"bench trajectory: {len(records)} records, "
              f"latest commit {comparisons[0].commit if comparisons else '?'}"))
    if args.action == "report":
        return 0
    regressions = [c for c in comparisons if c.regressed]
    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold * 100:.0f} %:")
        for c in regressions:
            print(f"  {c.bench}.{c.metric}: {c.baseline:.6g} -> "
                  f"{c.latest:.6g} {c.unit} ({c.change * 100:+.1f} %)")
        return 1
    print(f"no regressions beyond {args.threshold * 100:.0f} % "
          f"across {len(comparisons)} series")
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    import datetime
    import json

    from .obs import flight

    directory = args.dir or flight.default_dir()
    path = flight.latest_dump(directory)
    if path is None:
        print(f"debug dump: no flight dumps under {directory} "
              "(they appear on crashes, divergences and SIGUSR2)",
              file=sys.stderr)
        return 1
    if args.json:
        sys.stdout.write(path.read_text(encoding="utf-8"))
        return 0
    with open(path, "r", encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle if line.strip()]
    header = events[0] if events and events[0].get("kind") == "flight.dump" \
        else {}
    print(f"flight dump {path}")
    print(f"reason: {header.get('reason', '?')}, "
          f"pid {header.get('pid', '?')}, "
          f"{header.get('events', len(events))} events")
    for event in events[1:]:
        stamp = event.pop("ts", None)
        kind = event.pop("kind", "?")
        when = (datetime.datetime.fromtimestamp(stamp).strftime("%H:%M:%S.%f")
                [:-3] if isinstance(stamp, (int, float)) else "?")
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.items())
                          if v is not None)
        print(f"  {when} {kind:<12} {detail}")
    return 0


def _add_tls_flags(parser: argparse.ArgumentParser) -> None:
    """Shared ``--tls-*`` flags for cluster-facing subcommands.

    cert+key are a pair (partial config is a typed error); --tls-ca
    additionally pins the peer certificate on both sides.
    """
    parser.add_argument("--tls-cert", metavar="PEM", default=None,
                        help="TLS certificate chain for this endpoint "
                             "(requires --tls-key)")
    parser.add_argument("--tls-key", metavar="PEM", default=None,
                        help="private key for --tls-cert")
    parser.add_argument("--tls-ca", metavar="PEM", default=None,
                        help="CA bundle; peers must present a "
                             "certificate it signed")


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Triangle FO2 spin-wave gate reproduction "
                    "(Mahmoud et al., DATE 2021)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}",
                        help="print the package version (correlates "
                             "trace files and .repro_cache/ salts)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for engine-backed commands "
                             "(default serial; 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache "
                             "(.repro_cache/)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a span trace of the command: Chrome "
                             "trace-event JSON (open in Perfetto), or a "
                             "JSONL span log when FILE ends in .jsonl")
    parser.add_argument("--log-level", metavar="LEVEL", default=None,
                        help="enable repro logging at LEVEL "
                             "(debug, info, warning, ...)")
    sub = parser.add_subparsers(dest="command")

    p_tt = sub.add_parser("truth-table",
                          help="evaluate a gate on all input patterns")
    p_tt.add_argument("gate", help="maj3 | nmaj3 | xor | xnor | maj5 | "
                                   "and | or | nand | nor")
    p_tt.set_defaults(func=_cmd_truth_table)

    for name, func, help_text in (
            ("table1", _cmd_table1, "reproduce Table I"),
            ("table2", _cmd_table2, "reproduce Table II"),
            ("table3", _cmd_table3, "reproduce Table III")):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)

    p_design = sub.add_parser("design",
                              help="gate dimensions for a wavelength")
    p_design.add_argument("--wavelength-nm", type=float, default=55.0)
    p_design.set_defaults(func=_cmd_design)

    p_adder = sub.add_parser("adder",
                             help="n-bit adder comparison vs CMOS")
    p_adder.add_argument("width", type=int)
    p_adder.set_defaults(func=_cmd_adder)

    p_sweep = sub.add_parser(
        "sweep",
        help="truth-table grid through the parallel/cached engine")
    p_sweep.add_argument("gate", choices=["maj3", "xor"])
    p_sweep.add_argument("--tier",
                         choices=["surrogate", "network", "fdtd", "llg"],
                         default="fdtd",
                         help="evaluation tier (default fdtd: real wave "
                              "solves, seconds per cold pattern; "
                              "surrogate needs a fitted model -- run "
                              "'characterize' first)")
    p_sweep.add_argument("--cache-dir", default=".repro_cache",
                         help="result-cache directory")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-time bound [s]")
    p_sweep.add_argument("--retries", type=int, default=2,
                         help="retry attempts per failed job")
    p_sweep.add_argument("--json", metavar="PATH",
                         help="dump the telemetry RunReport as JSON")
    p_sweep.add_argument("--resume", action="store_true",
                         help="replay the job journal and skip completed "
                              "jobs (restarting interrupted ones)")
    p_sweep.add_argument("--journal", metavar="PATH", default=None,
                         help="write-ahead job journal path (default "
                              "<cache-dir>/journal-<gate>-<tier>.jsonl "
                              "when journalling is on; --resume implies "
                              "journalling)")
    p_sweep.add_argument("--backend", metavar="URL", default=None,
                         help="execution backend: 'local' (default) or "
                              "tcp://host:port of a cluster coordinator "
                              "(docs/CLUSTER.md)")
    p_sweep.add_argument("--secret", default=None,
                         help="cluster shared secret (default "
                              "$REPRO_CLUSTER_SECRET)")
    _add_tls_flags(p_sweep)
    # Accept the global engine flags after the subcommand too
    # (``sweep maj3 --no-cache``); SUPPRESS keeps the subparser from
    # clobbering values parsed at the top level.
    p_sweep.add_argument("--workers", type=int, metavar="N",
                         default=argparse.SUPPRESS,
                         help=argparse.SUPPRESS)
    p_sweep.add_argument("--no-cache", action="store_true",
                         default=argparse.SUPPRESS,
                         help=argparse.SUPPRESS)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_profile = sub.add_parser(
        "profile",
        help="run one gate case under the span tracer; print top spans")
    p_profile.add_argument("gate", choices=["maj3", "xor"])
    p_profile.add_argument("--tier",
                           choices=["surrogate", "network", "fdtd", "llg"],
                           default="fdtd",
                           help="evaluation tier to profile "
                                "(default fdtd)")
    p_profile.add_argument("--bits", default=None, metavar="PATTERN",
                           help="input pattern, e.g. 011 "
                                "(default: all ones)")
    p_profile.add_argument("--top", type=int, default=12, metavar="N",
                           help="span names to show in the summary "
                                "(default 12)")
    p_profile.set_defaults(func=_cmd_profile)

    p_char = sub.add_parser(
        "characterize",
        help="sweep a gate over the characterization axes and fit the "
             "surrogate tier's model (docs/SURROGATE.md)")
    p_char.add_argument("gate", choices=["maj3", "xor"])
    p_char.add_argument("--tier", choices=["network", "fdtd"],
                        default="network",
                        help="source tier the corners are evaluated "
                             "through (default network; llg corners "
                             "are minutes each)")
    p_char.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                        default=None,
                        help="override one axis grid, e.g. "
                             "--axis phase_noise=0,0.1,0.2 (repeatable; "
                             "axes: phase_noise, frequency_detune, "
                             "geometry_jitter, temperature)")
    p_char.add_argument("--n-trials", type=int, default=64, metavar="N",
                        help="Monte-Carlo trials per corner for the "
                             "error-rate response (default 64)")
    p_char.add_argument("--store", default=".repro_characterization",
                        metavar="DIR",
                        help="characterization store root (default "
                             ".repro_characterization/; the surrogate "
                             "tier reads $REPRO_SURROGATE_DIR or the "
                             "default)")
    p_char.add_argument("--kind", choices=["multilinear", "rbf"],
                        default="multilinear",
                        help="surrogate model family (default "
                             "multilinear; rbf accepts scattered "
                             "records)")
    p_char.add_argument("--residual-threshold", type=float, default=0.25,
                        metavar="R",
                        help="leave-one-out residual above which "
                             "queries fall back to the network tier "
                             "(default 0.25)")
    p_char.add_argument("--model", metavar="PATH", default=None,
                        help="write the fitted model here instead of "
                             "<store>/<gate>.surrogate.npz")
    p_char.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable fit summary")
    p_char.add_argument("--cache-dir", default=".repro_cache",
                        help="result-cache directory")
    p_char.add_argument("--workers", type=int, metavar="N",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    p_char.add_argument("--no-cache", action="store_true",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    p_char.set_defaults(func=_cmd_characterize)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP gate-evaluation service (coalescing, batching, "
             "backpressure; see docs/SERVING.md)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8077,
                         help="TCP port (default 8077; 0 = ephemeral)")
    p_serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                         help="jobs queued-or-running before new work "
                              "is rejected with 429 (default 64)")
    p_serve.add_argument("--rate", type=float, default=None, metavar="R",
                         help="token-bucket admission rate in new "
                              "jobs/s (default unlimited)")
    p_serve.add_argument("--burst", type=float, default=None, metavar="B",
                         help="token-bucket burst capacity "
                              "(default max(1, rate))")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         metavar="MS",
                         help="micro-batch collection window for "
                              "network-tier requests (default 2 ms)")
    p_serve.add_argument("--batch-max", type=int, default=16, metavar="N",
                         help="flush a micro-batch at this many jobs "
                              "(default 16)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-time bound for solver "
                              "tiers [s]")
    p_serve.add_argument("--cache-dir", default=".repro_cache",
                         help="result-cache directory")
    p_serve.add_argument("--access-log", metavar="PATH", default=None,
                         help="write a JSONL access log to PATH")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="S",
                         help="max seconds to wait for in-flight work "
                              "on shutdown (default 30)")
    p_serve.add_argument("--deadline-s", type=float, default=None,
                         metavar="S",
                         help="default per-request deadline [s] "
                              "(504 on expiry; the x-deadline-ms "
                              "header overrides it)")
    p_serve.add_argument("--breaker-threshold", type=int, default=5,
                         metavar="N",
                         help="consecutive failures that open a tier's "
                              "circuit breaker (default 5)")
    p_serve.add_argument("--breaker-reset-s", type=float, default=30.0,
                         metavar="S",
                         help="seconds an open circuit waits before "
                              "admitting a probe (default 30)")
    p_serve.add_argument("--surrogate-dir", metavar="DIR", default=None,
                         help="characterization store the surrogate "
                              "tier loads fitted models from (default "
                              "$REPRO_SURROGATE_DIR or "
                              ".repro_characterization/)")
    p_serve.add_argument("--backend", metavar="URL", default=None,
                         help="execution backend for solver tiers: "
                              "'local' (default) or tcp://host:port of "
                              "a cluster coordinator")
    p_serve.add_argument("--prefork", type=int, default=0, metavar="N",
                         help="fork N SO_REUSEPORT serve processes on "
                              "one port (default 0 = single process; "
                              "needs a fixed --port)")
    p_serve.add_argument("--workers", type=int, metavar="N",
                         default=argparse.SUPPRESS,
                         help=argparse.SUPPRESS)
    p_serve.add_argument("--no-cache", action="store_true",
                         default=argparse.SUPPRESS,
                         help=argparse.SUPPRESS)
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="join a repro.cluster coordinator and execute jobs "
             "(see docs/CLUSTER.md)")
    p_worker.add_argument("url", metavar="tcp://HOST:PORT",
                          help="coordinator address, e.g. "
                               "tcp://127.0.0.1:7421")
    p_worker.add_argument("--capacity", type=int, default=1, metavar="N",
                          help="jobs this worker runs concurrently "
                               "(default 1)")
    p_worker.add_argument("--name", default="",
                          help="worker name shown in `cluster status` "
                               "(default <hostname>:<pid>)")
    p_worker.add_argument("--secret", default=None,
                          help="cluster shared secret (default "
                               "$REPRO_CLUSTER_SECRET)")
    p_worker.add_argument("--dial-timeout", type=float, default=10.0,
                          metavar="S",
                          help="seconds to keep redialling an absent "
                               "coordinator at startup (default 10)")
    p_worker.add_argument("--dial-backoff", type=float, default=0.2,
                          metavar="S",
                          help="base delay between dial attempts; "
                               "doubles per retry with jitter, capped "
                               "at 2 s (default 0.2)")
    p_worker.add_argument("--reconnect-window", type=float, default=60.0,
                          metavar="S",
                          help="seconds to redial a lost coordinator "
                               "before the worker gives up "
                               "(default 60)")
    _add_tls_flags(p_worker)
    p_worker.set_defaults(func=_cmd_worker)

    p_cluster = sub.add_parser(
        "cluster",
        help="run or inspect a cluster coordinator "
             "(see docs/CLUSTER.md)")
    p_cluster.add_argument("action",
                           choices=["start", "supervise", "status",
                                    "stop"],
                           help="start a coordinator (supervise: under "
                                "a restart-on-crash supervisor), or "
                                "query/stop a running one")
    p_cluster.add_argument("url", nargs="?", default=None,
                           metavar="tcp://HOST:PORT",
                           help="coordinator address (status/stop)")
    p_cluster.add_argument("--host", default="127.0.0.1",
                           help="bind address for start "
                                "(default 127.0.0.1)")
    p_cluster.add_argument("--port", type=int, default=7421,
                           help="TCP port for start (default 7421; "
                                "0 = ephemeral)")
    p_cluster.add_argument("--cache-dir", default=".repro_cache",
                           help="shared result-cache directory "
                                "(default .repro_cache)")
    p_cluster.add_argument("--no-cache", action="store_true",
                           help="run the coordinator without a shared "
                                "cache tier")
    p_cluster.add_argument("--journal", metavar="PATH", default=None,
                           help="write-ahead job journal path")
    p_cluster.add_argument("--secret", default=None,
                           help="cluster shared secret (default "
                                "$REPRO_CLUSTER_SECRET)")
    p_cluster.add_argument("--retries", type=int, default=2, metavar="N",
                           help="attempts per failing job beyond the "
                                "first (default 2; worker deaths do "
                                "not consume attempts)")
    p_cluster.add_argument("--heartbeat-timeout", type=float, default=3.0,
                           metavar="S",
                           help="seconds without a heartbeat before a "
                                "worker is declared lost and its jobs "
                                "rescheduled (default 3.0)")
    p_cluster.add_argument("--max-restarts", type=int, default=20,
                           metavar="N",
                           help="supervise: restart budget before "
                                "giving up; 5 s of healthy uptime "
                                "refills it (default 20)")
    p_cluster.add_argument("--pid-file", metavar="PATH", default=None,
                           help="supervise: write the live "
                                "coordinator pid here after every "
                                "(re)spawn")
    _add_tls_flags(p_cluster)
    p_cluster.add_argument("--json", action="store_true",
                           help="machine-readable status output")
    p_cluster.set_defaults(func=_cmd_cluster)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or prune the on-disk result cache")
    p_cache.add_argument("action", choices=["stats", "prune"])
    p_cache.add_argument("--cache-dir", default=".repro_cache",
                         help="result-cache directory")
    p_cache.add_argument("--max-bytes", type=_parse_size, default=None,
                         metavar="N",
                         help="prune: evict least-recently-used entries "
                              "until at most N bytes remain (suffixes "
                              "K/M/G accepted; 0 empties the cache)")
    p_cache.add_argument("--json", action="store_true",
                         help="stats: print the machine-readable usage "
                              "report (entries, bytes, per-salt split, "
                              "quarantine count)")
    p_cache.set_defaults(func=_cmd_cache)

    p_compile = sub.add_parser(
        "compile",
        help="compile a boolean-function spec into a placed, "
             "DRC-checked triangle-gate fabric (docs/COMPILER.md)")
    p_compile.add_argument(
        "spec",
        help="builtin name (maj3, xor2, full_adder, parity4, and_or), "
             "inline JSON spec, equation list ('s = a ^ b; ...'), or "
             "a spec file path")
    p_compile.add_argument("--characterize", action="store_true",
                           help="run the energy/delay/error-rate "
                                "characterizer on the compiled circuit")
    p_compile.add_argument("--tier", choices=["network", "fdtd", "llg"],
                           default="network",
                           help="simulation tier for the characterizer's "
                                "error sweeps (default network)")
    p_compile.add_argument("--rules", metavar="JSON", default=None,
                           help="design-rule deck overrides: inline JSON "
                                "or a JSON file path")
    p_compile.add_argument("--gate-clearance", type=float, default=None,
                           metavar="L",
                           help="required minimum gate spacing [lambda]")
    p_compile.add_argument("--row-clearance", type=float, default=None,
                           metavar="L",
                           help="placer vertical packing target [lambda]")
    p_compile.add_argument("--col-clearance", type=float, default=None,
                           metavar="L",
                           help="placer horizontal packing target "
                                "[lambda]")
    p_compile.add_argument("--out", metavar="PATH", default=None,
                           help="write the full compile result "
                                "(netlist + placement + DRC) as JSON")
    p_compile.add_argument("--report", metavar="PATH", default=None,
                           help="write the characterization report as "
                                "JSON (requires --characterize)")
    p_compile.add_argument("--cache-dir", default=".repro_cache",
                           help="result-cache directory for "
                                "characterization sweeps")
    p_compile.add_argument("--workers", type=int, metavar="N",
                           default=argparse.SUPPRESS,
                           help=argparse.SUPPRESS)
    p_compile.add_argument("--no-cache", action="store_true",
                           default=argparse.SUPPRESS,
                           help=argparse.SUPPRESS)
    p_compile.set_defaults(func=_cmd_compile)

    p_bench = sub.add_parser(
        "bench",
        help="report or gate on the accumulated benchmark trajectory "
             "(benchmarks/output/BENCH_TRAJECTORY.jsonl)")
    p_bench.add_argument("action", choices=["report", "compare"],
                         help="report: sparkline history per metric "
                              "(exit 0 even when the trajectory is "
                              "missing); compare: exit 1 when the "
                              "latest commit regressed beyond "
                              "--threshold, exit 3 when there is no "
                              "trajectory to gate on")
    p_bench.add_argument("--trajectory", metavar="PATH",
                         default="benchmarks/output/BENCH_TRAJECTORY.jsonl",
                         help="trajectory JSONL file (default "
                              "benchmarks/output/BENCH_TRAJECTORY.jsonl)")
    p_bench.add_argument("--threshold", type=float, default=0.15,
                         metavar="R",
                         help="relative regression threshold "
                              "(default 0.15 = 15 %%)")
    p_bench.add_argument("--baseline-window", type=int, default=5,
                         metavar="N",
                         help="earlier-commit records forming the rolling "
                              "baseline median (default 5)")
    p_bench.add_argument("--bench", default=None, metavar="NAME",
                         help="restrict to one benchmark name")
    p_bench.set_defaults(func=_cmd_bench)

    p_debug = sub.add_parser(
        "debug",
        help="inspect the flight recorder (docs/OBSERVABILITY.md)")
    p_debug.add_argument("action", choices=["dump"],
                         help="dump: print the most recent flight-"
                              "recorder dump")
    p_debug.add_argument("--dir", metavar="PATH", default=None,
                         help="dump directory (default .repro_flight/ "
                              "or $REPRO_FLIGHT_DIR)")
    p_debug.add_argument("--json", action="store_true",
                         help="print the raw JSONL instead of the "
                              "formatted timeline")
    p_debug.set_defaults(func=_cmd_debug)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits itself on usage errors such as an unknown
        # subcommand (code 2, usage already printed).  Convert those to
        # a return so embedders -- and the ``python -m repro`` entry --
        # see one int-returning contract.  The clean --help/--version
        # exit (code 0) stands: callers expect argparse's behaviour
        # there.
        code = exc.code
        if code in (0, None):
            raise
        return code if isinstance(code, int) else 2
    if getattr(args, "func", None) is None:
        # No subcommand: print usage, conventional CLI misuse code.
        parser.print_usage(sys.stderr)
        print("repro: error: a subcommand is required "
              "(see 'python -m repro --help')", file=sys.stderr)
        return 2

    from . import obs
    from .resilience import faults

    # Black-box recording: an unhandled crash or a SIGUSR2 poke dumps
    # the flight recorder's recent events (``repro debug dump`` reads
    # them back).  Both installs are idempotent no-ops off-unix.
    obs.flight.install_excepthook()
    obs.flight.install_signal_handler()

    try:
        # Chaos testing: a JSON fault plan in $REPRO_FAULTS arms
        # deterministic fault injection for this process and (via the
        # inherited environment) its pool workers.
        faults.install_from_env()
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    if args.log_level is not None:
        try:
            obs.setup_logging(args.log_level)
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
    tracing = args.trace is not None
    if tracing:
        obs.enable()
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early -- not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    finally:
        if tracing:
            spans = obs.drain_spans()
            obs.disable()
            try:
                from . import __version__

                fmt = obs.write_trace_file(
                    args.trace, spans,
                    metadata={"repro_version": __version__,
                              "command": args.command})
                print(f"trace written to {args.trace} "
                      f"({len(spans)} spans, {fmt} format)",
                      file=sys.stderr)
            except OSError as exc:
                print(f"repro: could not write trace file: {exc}",
                      file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
