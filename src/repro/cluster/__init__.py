"""repro.cluster: distributed execution across worker processes.

The single-host runtime tops out at one machine's process pool; this
package turns the same :class:`~repro.runtime.Executor` into a
multi-host one with three stdlib-only pieces:

* :class:`Coordinator` -- a threaded TCP server that shards jobs to
  workers, deduplicates identical submissions cluster-wide
  (coordinator-brokered single-flight: 64 identical jobs from any
  number of hosts execute once), owns the shared content-addressed
  cache and the write-ahead journal, and reschedules the in-flight
  jobs of workers that die (socket EOF) or go silent (missed
  heartbeats) -- a ``kill -9``'d worker costs nothing but latency;
* :class:`Worker` -- ``python -m repro worker tcp://host:port``: one
  process executing jobs with the same fault-injection, tracing and
  resource accounting as local pool workers;
* :class:`TcpClusterBackend` -- the
  :class:`~repro.runtime.ExecutorBackend` that makes any executor --
  sweeps, serve, the compiler's characterization runs -- ship its
  cache misses to a coordinator: ``sweep --backend tcp://...``.

All connections are mutually authenticated with an HMAC-SHA256
shared-secret handshake (``REPRO_CLUSTER_SECRET``); frames are
length-prefixed JSON with ndarrays in base64 npz sidecars, so results
decode bit-identically to local execution.  See ``docs/CLUSTER.md``
for the protocol, the failure model and the security notes.

Quickstart (three shells)::

    python -m repro cluster start --port 7421          # coordinator
    python -m repro worker tcp://127.0.0.1:7421        # n of these
    python -m repro sweep xor --tier fdtd \\
        --backend tcp://127.0.0.1:7421
"""

from .backend import ClusterClient, TcpClusterBackend
from .coordinator import Coordinator
from .protocol import (
    DEV_SECRET,
    SECRET_ENV,
    TlsConfig,
    decode_value,
    encode_value,
    parse_url,
    recv_frame,
    recv_message,
    resolve_secret,
    send_frame,
    send_message,
    tls_config,
)
from .supervise import run_supervised
from .worker import Worker, run_worker

__all__ = [
    "ClusterClient",
    "Coordinator",
    "DEV_SECRET",
    "SECRET_ENV",
    "TcpClusterBackend",
    "TlsConfig",
    "Worker",
    "decode_value",
    "encode_value",
    "parse_url",
    "recv_frame",
    "recv_message",
    "resolve_secret",
    "run_supervised",
    "run_worker",
    "send_frame",
    "send_message",
    "tls_config",
]
