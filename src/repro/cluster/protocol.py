"""Wire protocol of the cluster: frames, handshake, value codec.

Everything on a cluster socket is a *frame*: a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON (one object per
frame).  Numpy arrays inside job results ride as a base64-encoded
in-memory ``.npz`` attached to the JSON object -- the same tagged-JSON
codec the disk cache uses (:mod:`repro.runtime.cache`), so anything
cacheable is shippable and decodes bit-identically on the other side.

Connections authenticate *mutually* with an HMAC-SHA256
challenge-response over a shared secret before any job data flows:

1. server -> client: ``{"type": "challenge", "nonce": <hex>}``
2. client -> server: ``{"type": "auth", "role": ..., "nonce": <hex>,
   "mac": HMAC(secret, "client:" + server_nonce)}``
3. server -> client: ``{"type": "welcome",
   "mac": HMAC(secret, "server:" + client_nonce)}``

A peer that cannot produce the MAC is dropped with
:class:`~repro.errors.ClusterAuthError`; because the *server* must
answer the client's nonce too, a client never sends job parameters to
a coordinator that does not hold the secret.  The secret comes from
the ``REPRO_CLUSTER_SECRET`` environment variable (see
``docs/CLUSTER.md`` for the security model and its limits -- the
payload itself is not encrypted).

Message types after the handshake:

======================  =====================================================
frame                   direction and meaning
======================  =====================================================
``hello``               worker -> coordinator: register, with ``capacity``
``job``                 coordinator -> worker: run one job (ref, params,
                        timeout, optional fault plan and trace context)
``result``              worker -> coordinator: one job's outcome
``heartbeat``           worker -> coordinator: liveness, every interval
``submit``              client -> coordinator: a batch of jobs
``outcome``             coordinator -> client: one job's final outcome
``status``              client -> coordinator and back: cluster snapshot
``ping`` / ``pong``     client -> coordinator and back: reachability probe
``shutdown``            client -> coordinator: stop serving; coordinator ->
                        worker: exit
``error``               either direction: protocol-level failure report
======================  =====================================================
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import io
import json
import os
import secrets as _secrets
import socket
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import ClusterAuthError, ClusterError
from ..resilience import faults
from ..runtime.cache import _decode, _encode

#: Environment variable holding the cluster shared secret.
SECRET_ENV = "REPRO_CLUSTER_SECRET"

#: Secret used when ``REPRO_CLUSTER_SECRET`` is unset -- fine for
#: localhost development and the test suite, NOT for shared networks
#: (anyone can read this file); see the security note in
#: ``docs/CLUSTER.md``.
DEV_SECRET = "repro-dev-cluster-secret"

#: Hard ceiling on one frame's payload: a malformed or hostile length
#: prefix never makes a peer allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def resolve_secret(secret: Optional[str] = None) -> str:
    """Explicit secret, else ``REPRO_CLUSTER_SECRET``, else the
    development secret."""
    if secret:
        return secret
    return os.environ.get(SECRET_ENV) or DEV_SECRET


# -- framing ----------------------------------------------------------------

def send_frame(sock: socket.socket, message: Dict[str, Any]) -> int:
    """Serialize ``message`` and write one length-prefixed frame.

    Returns the bytes written (prefix included).  The fault site
    ``cluster.frame.send`` supports ``slow`` (the frame is delayed, by
    :func:`~repro.resilience.faults.trip` itself), ``error``/``crash``
    (fired inside ``trip``) and ``corrupt`` (the frame is *dropped*:
    the connection is torn down so both peers see a clean EOF rather
    than a desynchronized stream).
    """
    if faults.active():
        fault = faults.trip("cluster.frame.send")
        if fault is not None and fault.kind == "corrupt":
            try:
                sock.close()
            finally:
                raise ClusterError(
                    "fault injection dropped a frame (cluster.frame.send)")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    data = _LENGTH.pack(len(payload)) + payload
    sock.sendall(data)
    if obs.enabled():
        obs.counter("cluster.bytes_sent").inc(len(data))
        obs.counter("cluster.frames_sent").inc()
    return len(data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or None on a clean EOF."""
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except OSError:
            return None  # peer reset / socket closed under us
        if not chunk:
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on EOF (peer gone).

    A syntactically broken frame (bad length, bad JSON, non-object
    payload) raises :class:`~repro.errors.ClusterError` -- the caller
    drops the connection rather than guessing at re-synchronisation.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); dropping the connection")
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ClusterError(f"undecodable frame: {exc}")
    if not isinstance(message, dict):
        raise ClusterError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    if obs.enabled():
        obs.counter("cluster.bytes_received").inc(_LENGTH.size + length)
        obs.counter("cluster.frames_received").inc()
    return message


# -- value codec ------------------------------------------------------------

def encode_value(value: Any) -> Dict[str, Any]:
    """Encode a job result for a frame: tagged JSON plus an optional
    base64 in-memory npz carrying the ndarrays."""
    arrays: Dict[str, np.ndarray] = {}
    node = _encode(value, arrays)
    encoded: Dict[str, Any] = {"value": node}
    if arrays:
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        encoded["npz"] = base64.b64encode(buffer.getvalue()).decode("ascii")
    return encoded


def decode_value(encoded: Dict[str, Any]) -> Any:
    """Invert :func:`encode_value` (bit-identical arrays included)."""
    arrays = None
    blob = encoded.get("npz")
    if blob:
        with np.load(io.BytesIO(base64.b64decode(blob))) as npz:
            arrays = {name: npz[name] for name in npz.files}
    return _decode(encoded.get("value"), arrays)


# -- HMAC handshake ---------------------------------------------------------

def _mac(secret: str, role: str, nonce: str) -> str:
    return hmac.new(secret.encode("utf-8"),
                    f"{role}:{nonce}".encode("utf-8"),
                    hashlib.sha256).hexdigest()


def server_handshake(sock: socket.socket, secret: str) -> Dict[str, Any]:
    """Coordinator side: challenge the peer, verify, answer its nonce.

    Returns the peer's ``auth`` frame (the ``role`` field tells worker
    from client).  Raises :class:`~repro.errors.ClusterAuthError` on a
    missing or wrong MAC; the caller closes the socket.
    """
    nonce = _secrets.token_hex(16)
    send_frame(sock, {"type": "challenge", "nonce": nonce})
    reply = recv_frame(sock)
    if reply is None or reply.get("type") != "auth":
        raise ClusterAuthError("peer hung up before authenticating")
    expected = _mac(secret, "client", nonce)
    if not hmac.compare_digest(str(reply.get("mac", "")), expected):
        raise ClusterAuthError("peer failed the HMAC challenge")
    peer_nonce = str(reply.get("nonce", ""))
    send_frame(sock, {"type": "welcome",
                      "mac": _mac(secret, "server", peer_nonce)})
    return reply


def client_handshake(sock: socket.socket, secret: str,
                     role: str = "client",
                     extra: Optional[Dict[str, Any]] = None) -> None:
    """Worker/client side: answer the challenge, verify the server.

    ``extra`` fields (e.g. a worker's ``capacity``) ride on the auth
    frame so registration needs no extra round trip.
    """
    challenge = recv_frame(sock)
    if challenge is None or challenge.get("type") != "challenge":
        raise ClusterAuthError("coordinator did not send a challenge")
    nonce = _secrets.token_hex(16)
    auth: Dict[str, Any] = {
        "type": "auth", "role": role, "nonce": nonce,
        "mac": _mac(secret, "client", str(challenge.get("nonce", "")))}
    auth.update(extra or {})
    send_frame(sock, auth)
    welcome = recv_frame(sock)
    if welcome is None or welcome.get("type") != "welcome":
        raise ClusterAuthError(
            "coordinator rejected the HMAC credential (wrong "
            f"{SECRET_ENV}?)")
    if not hmac.compare_digest(str(welcome.get("mac", "")),
                               _mac(secret, "server", nonce)):
        raise ClusterAuthError(
            "coordinator failed to prove knowledge of the shared "
            "secret; refusing to send it any work")


def parse_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` -> (host, port); raises
    :class:`~repro.errors.ClusterConfigError` on anything else."""
    from ..errors import ClusterConfigError

    if not url.startswith("tcp://"):
        raise ClusterConfigError(
            f"cluster URL must start with tcp://, got {url!r}")
    rest = url[len("tcp://"):]
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ClusterConfigError(
            f"cluster URL must be tcp://host:port, got {url!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterConfigError(
            f"cluster URL port must be an integer, got {url!r}")
    if not 0 < port < 65536:
        raise ClusterConfigError(
            f"cluster URL port out of range, got {url!r}")
    return host, port
