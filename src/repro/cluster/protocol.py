"""Wire protocol of the cluster: frames, handshake, value codec.

Everything on a cluster socket is a *frame*: a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON (one object per
frame).  Numpy arrays inside job results ride as a base64-encoded
in-memory ``.npz`` attached to the JSON object -- the same tagged-JSON
codec the disk cache uses (:mod:`repro.runtime.cache`), so anything
cacheable is shippable and decodes bit-identically on the other side.

Connections authenticate *mutually* with an HMAC-SHA256
challenge-response over a shared secret before any job data flows:

1. server -> client: ``{"type": "challenge", "nonce": <hex>}``
2. client -> server: ``{"type": "auth", "role": ..., "nonce": <hex>,
   "mac": HMAC(secret, "client:" + server_nonce)}``
3. server -> client: ``{"type": "welcome",
   "mac": HMAC(secret, "server:" + client_nonce)}``

A peer that cannot produce the MAC is dropped with
:class:`~repro.errors.ClusterAuthError`; because the *server* must
answer the client's nonce too, a client never sends job parameters to
a coordinator that does not hold the secret.  The secret comes from
the ``REPRO_CLUSTER_SECRET`` environment variable (see
``docs/CLUSTER.md`` for the security model and its limits -- the
payload itself is not encrypted).

Message types after the handshake:

======================  =====================================================
frame                   direction and meaning
======================  =====================================================
``hello``               worker -> coordinator: register, with ``capacity``
``job``                 coordinator -> worker: run one job (ref, params,
                        timeout, optional fault plan and trace context)
``result``              worker -> coordinator: one job's outcome
``heartbeat``           worker -> coordinator: liveness, every interval
``submit``              client -> coordinator: a batch of jobs
``outcome``             coordinator -> client: one job's final outcome
``status``              client -> coordinator and back: cluster snapshot
``ping`` / ``pong``     client -> coordinator and back: reachability probe
``shutdown``            client -> coordinator: stop serving; coordinator ->
                        worker: exit
``result_chunk``        either direction: header announcing a large message
                        streamed as raw binary chunks (see below)
``error``               either direction: protocol-level failure report
======================  =====================================================

Messages larger than :data:`CHUNK_THRESHOLD` do not travel as one
giant frame (the 256 MiB frame cap exists to stop hostile lengths
from allocating unbounded memory, and it must not become a
correctness cliff for big fdtd/llg field dumps).  Instead
:func:`send_message` emits a small ``result_chunk`` header frame
declaring the total byte count, the chunk count and a SHA-256 digest,
followed by that many *raw* length-prefixed binary chunks of at most
:data:`CHUNK_BYTES` each.  :func:`recv_message` reassembles them
under a running digest check: a short stream, an overrun or a digest
mismatch raises :class:`~repro.errors.ClusterError` and the caller
drops the connection -- a corrupt gigabyte never decodes into a
plausible-looking result.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import io
import json
import os
import secrets as _secrets
import socket
import ssl
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import ClusterAuthError, ClusterError
from ..resilience import faults
from ..runtime.cache import _decode, _encode

#: Environment variable holding the cluster shared secret.
SECRET_ENV = "REPRO_CLUSTER_SECRET"

#: Secret used when ``REPRO_CLUSTER_SECRET`` is unset -- fine for
#: localhost development and the test suite, NOT for shared networks
#: (anyone can read this file); see the security note in
#: ``docs/CLUSTER.md``.
DEV_SECRET = "repro-dev-cluster-secret"

#: Hard ceiling on one frame's payload: a malformed or hostile length
#: prefix never makes a peer allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Messages above this size are streamed as chunks by
#: :func:`send_message` instead of one frame.  Well under the frame
#: cap so the threshold is a performance knob, never a correctness
#: one.
CHUNK_THRESHOLD = 32 * 1024 * 1024

#: Size of one raw chunk inside a streamed message.
CHUNK_BYTES = 8 * 1024 * 1024

#: Ceiling on a *streamed* message's total size.  Large enough for
#: multi-gigabyte field dumps, small enough that a hostile header
#: still cannot ask for unbounded memory.
MAX_STREAM_BYTES = 8 * 1024 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def resolve_secret(secret: Optional[str] = None) -> str:
    """Explicit secret, else ``REPRO_CLUSTER_SECRET``, else the
    development secret."""
    if secret:
        return secret
    return os.environ.get(SECRET_ENV) or DEV_SECRET


# -- framing ----------------------------------------------------------------

def _send_payload(sock: socket.socket, payload: bytes) -> int:
    """Write one length-prefixed payload (fault site + cap + counters)."""
    if faults.active():
        fault = faults.trip("cluster.frame.send")
        if fault is not None and fault.kind == "corrupt":
            try:
                sock.close()
            finally:
                raise ClusterError(
                    "fault injection dropped a frame (cluster.frame.send)")
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    data = _LENGTH.pack(len(payload)) + payload
    sock.sendall(data)
    if obs.enabled():
        obs.counter("cluster.bytes_sent").inc(len(data))
        obs.counter("cluster.frames_sent").inc()
    return len(data)


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> int:
    """Serialize ``message`` and write one length-prefixed frame.

    Returns the bytes written (prefix included).  The fault site
    ``cluster.frame.send`` supports ``slow`` (the frame is delayed, by
    :func:`~repro.resilience.faults.trip` itself), ``error``/``crash``
    (fired inside ``trip``) and ``corrupt`` (the frame is *dropped*:
    the connection is torn down so both peers see a clean EOF rather
    than a desynchronized stream).
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _send_payload(sock, payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or None on a clean EOF."""
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except OSError:
            return None  # peer reset / socket closed under us
        if not chunk:
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _recv_payload(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed payload; None on EOF (peer gone)."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); dropping the connection")
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    if obs.enabled():
        obs.counter("cluster.bytes_received").inc(_LENGTH.size + length)
        obs.counter("cluster.frames_received").inc()
    return payload


def _parse_frame(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ClusterError(f"undecodable frame: {exc}")
    if not isinstance(message, dict):
        raise ClusterError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on EOF (peer gone).

    A syntactically broken frame (bad length, bad JSON, non-object
    payload) raises :class:`~repro.errors.ClusterError` -- the caller
    drops the connection rather than guessing at re-synchronisation.
    """
    payload = _recv_payload(sock)
    if payload is None:
        return None
    return _parse_frame(payload)


# -- chunked streaming ------------------------------------------------------

def send_message(sock: socket.socket, message: Dict[str, Any]) -> int:
    """Send ``message``, streaming it in chunks when it is large.

    Messages up to :data:`CHUNK_THRESHOLD` go through
    :func:`send_frame` unchanged -- the common case pays nothing.
    Bigger ones are announced by a ``result_chunk`` header frame
    (total bytes, chunk count, SHA-256) and streamed as raw
    length-prefixed chunks of :data:`CHUNK_BYTES`, so a result larger
    than the frame cap still crosses the wire -- and arrives
    digest-verified.  Returns the bytes written.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) <= CHUNK_THRESHOLD:
        return _send_payload(sock, payload)
    if len(payload) > MAX_STREAM_BYTES:
        raise ClusterError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_STREAM_BYTES}-byte streaming limit")
    chunks = (len(payload) + CHUNK_BYTES - 1) // CHUNK_BYTES
    sent = send_frame(sock, {
        "type": "result_chunk",
        "bytes": len(payload),
        "chunks": chunks,
        "chunk_bytes": CHUNK_BYTES,
        "sha256": hashlib.sha256(payload).hexdigest(),
    })
    view = memoryview(payload)
    for i in range(chunks):
        chunk = view[i * CHUNK_BYTES:(i + 1) * CHUNK_BYTES]
        sock.sendall(_LENGTH.pack(len(chunk)))
        sock.sendall(chunk)
        sent += _LENGTH.size + len(chunk)
    if obs.enabled():
        obs.counter("cluster.chunked_messages_sent").inc()
        obs.counter("cluster.chunk_frames_sent").inc(chunks)
        obs.counter("cluster.bytes_sent").inc(len(payload)
                                             + chunks * _LENGTH.size)
    return sent


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message, reassembling a chunk stream transparently.

    The inverse of :func:`send_message`: an ordinary frame is returned
    as-is; a ``result_chunk`` header makes this call consume the
    announced raw chunks under a running SHA-256.  A short stream, an
    overrun past the declared size or a digest mismatch raises
    :class:`~repro.errors.ClusterError`; None means EOF.
    """
    frame = recv_frame(sock)
    if frame is None or frame.get("type") != "result_chunk":
        return frame
    try:
        total = int(frame.get("bytes", -1))
        chunks = int(frame.get("chunks", -1))
    except (TypeError, ValueError):
        raise ClusterError("malformed result_chunk header")
    if not 0 < total <= MAX_STREAM_BYTES:
        raise ClusterError(
            f"peer announced a {total}-byte chunked message (limit "
            f"{MAX_STREAM_BYTES}); dropping the connection")
    if not 0 < chunks <= total:
        raise ClusterError(
            f"implausible chunk count {chunks} for {total} bytes")
    digest = hashlib.sha256()
    parts = []
    received = 0
    for _ in range(chunks):
        chunk = _recv_payload(sock)
        if chunk is None:
            return None  # peer died mid-stream; same as any other EOF
        received += len(chunk)
        if received > total:
            raise ClusterError(
                f"chunked message overran its declared {total} bytes")
        digest.update(chunk)
        parts.append(chunk)
    if received != total:
        raise ClusterError(
            f"chunked message ended at {received} of {total} declared "
            "bytes")
    if not hmac.compare_digest(digest.hexdigest(),
                               str(frame.get("sha256", ""))):
        raise ClusterError(
            "chunked message failed its SHA-256 digest check; "
            "dropping the connection")
    if obs.enabled():
        obs.counter("cluster.chunked_messages_received").inc()
    return _parse_frame(b"".join(parts))


# -- value codec ------------------------------------------------------------

def encode_value(value: Any) -> Dict[str, Any]:
    """Encode a job result for a frame: tagged JSON plus an optional
    base64 in-memory npz carrying the ndarrays."""
    arrays: Dict[str, np.ndarray] = {}
    node = _encode(value, arrays)
    encoded: Dict[str, Any] = {"value": node}
    if arrays:
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        encoded["npz"] = base64.b64encode(buffer.getvalue()).decode("ascii")
    return encoded


def decode_value(encoded: Dict[str, Any]) -> Any:
    """Invert :func:`encode_value` (bit-identical arrays included)."""
    arrays = None
    blob = encoded.get("npz")
    if blob:
        with np.load(io.BytesIO(base64.b64decode(blob))) as npz:
            arrays = {name: npz[name] for name in npz.files}
    return _decode(encoded.get("value"), arrays)


# -- HMAC handshake ---------------------------------------------------------

def _mac(secret: str, role: str, nonce: str) -> str:
    return hmac.new(secret.encode("utf-8"),
                    f"{role}:{nonce}".encode("utf-8"),
                    hashlib.sha256).hexdigest()


def server_handshake(sock: socket.socket, secret: str) -> Dict[str, Any]:
    """Coordinator side: challenge the peer, verify, answer its nonce.

    Returns the peer's ``auth`` frame (the ``role`` field tells worker
    from client).  Raises :class:`~repro.errors.ClusterAuthError` on a
    missing or wrong MAC; the caller closes the socket.
    """
    nonce = _secrets.token_hex(16)
    send_frame(sock, {"type": "challenge", "nonce": nonce})
    reply = recv_frame(sock)
    if reply is None or reply.get("type") != "auth":
        raise ClusterAuthError("peer hung up before authenticating")
    expected = _mac(secret, "client", nonce)
    if not hmac.compare_digest(str(reply.get("mac", "")), expected):
        raise ClusterAuthError("peer failed the HMAC challenge")
    peer_nonce = str(reply.get("nonce", ""))
    send_frame(sock, {"type": "welcome",
                      "mac": _mac(secret, "server", peer_nonce)})
    return reply


def client_handshake(sock: socket.socket, secret: str,
                     role: str = "client",
                     extra: Optional[Dict[str, Any]] = None) -> None:
    """Worker/client side: answer the challenge, verify the server.

    ``extra`` fields (e.g. a worker's ``capacity``) ride on the auth
    frame so registration needs no extra round trip.
    """
    challenge = recv_frame(sock)
    if challenge is None or challenge.get("type") != "challenge":
        raise ClusterAuthError("coordinator did not send a challenge")
    nonce = _secrets.token_hex(16)
    auth: Dict[str, Any] = {
        "type": "auth", "role": role, "nonce": nonce,
        "mac": _mac(secret, "client", str(challenge.get("nonce", "")))}
    auth.update(extra or {})
    send_frame(sock, auth)
    welcome = recv_frame(sock)
    if welcome is None or welcome.get("type") != "welcome":
        raise ClusterAuthError(
            "coordinator rejected the HMAC credential (wrong "
            f"{SECRET_ENV}?)")
    if not hmac.compare_digest(str(welcome.get("mac", "")),
                               _mac(secret, "server", nonce)):
        raise ClusterAuthError(
            "coordinator failed to prove knowledge of the shared "
            "secret; refusing to send it any work")


def parse_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` -> (host, port); raises
    :class:`~repro.errors.ClusterConfigError` on anything else."""
    from ..errors import ClusterConfigError

    if not url.startswith("tcp://"):
        raise ClusterConfigError(
            f"cluster URL must start with tcp://, got {url!r}")
    rest = url[len("tcp://"):]
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ClusterConfigError(
            f"cluster URL must be tcp://host:port, got {url!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterConfigError(
            f"cluster URL port must be an integer, got {url!r}")
    if not 0 < port < 65536:
        raise ClusterConfigError(
            f"cluster URL port out of range, got {url!r}")
    return host, port


# -- optional TLS -----------------------------------------------------------

@dataclass(frozen=True)
class TlsConfig:
    """PEM paths for optional TLS on cluster sockets.

    Built by :func:`tls_config` (which validates partial
    configurations with a typed error) and turned into
    ``ssl.SSLContext`` objects by :func:`server_tls_context` /
    :func:`client_tls_context`.  TLS encrypts the transport; peer
    *authentication* remains the HMAC handshake (certificates add a
    second, independent factor when ``ca`` is given).
    """

    cert: Optional[str] = None
    key: Optional[str] = None
    ca: Optional[str] = None


def tls_config(cert: Optional[str] = None, key: Optional[str] = None,
               ca: Optional[str] = None) -> Optional[TlsConfig]:
    """Normalize ``--tls-*`` flags: None when all unset, a validated
    :class:`TlsConfig` otherwise.

    A certificate without its key (or vice versa) is a configuration
    mistake, reported as :class:`~repro.errors.ClusterConfigError`
    rather than an ``ssl`` traceback at first connection.
    """
    from ..errors import ClusterConfigError

    if not (cert or key or ca):
        return None
    if bool(cert) != bool(key):
        raise ClusterConfigError(
            "--tls-cert and --tls-key must be given together "
            f"(got cert={cert!r}, key={key!r})")
    for label, path in (("--tls-cert", cert), ("--tls-key", key),
                        ("--tls-ca", ca)):
        if path and not os.path.isfile(path):
            raise ClusterConfigError(f"{label} file not found: {path}")
    return TlsConfig(cert=cert, key=key, ca=ca)


def server_tls_context(config: TlsConfig) -> ssl.SSLContext:
    """Coordinator-side context: requires a cert+key pair; with a CA,
    client certificates are demanded and verified too."""
    from ..errors import ClusterConfigError

    if not config.cert:
        raise ClusterConfigError(
            "serving TLS needs --tls-cert and --tls-key")
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    try:
        context.load_cert_chain(config.cert, config.key)
        if config.ca:
            context.load_verify_locations(config.ca)
            context.verify_mode = ssl.CERT_REQUIRED
    except (ssl.SSLError, OSError) as exc:
        raise ClusterConfigError(f"bad TLS material: {exc}") from exc
    return context


def client_tls_context(config: TlsConfig) -> ssl.SSLContext:
    """Worker/client-side context.

    With ``ca`` the coordinator's certificate is verified against it
    (hostname checking stays off: cluster URLs are routinely raw IPs
    and the HMAC handshake already authenticates the peer); without
    ``ca`` the channel is encrypted but the certificate unverified.
    An optional cert+key pair is presented for mutual TLS.
    """
    from ..errors import ClusterConfigError

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.check_hostname = False
    try:
        if config.ca:
            context.load_verify_locations(config.ca)
            context.verify_mode = ssl.CERT_REQUIRED
        else:
            context.verify_mode = ssl.CERT_NONE
        if config.cert:
            context.load_cert_chain(config.cert, config.key)
    except (ssl.SSLError, OSError) as exc:
        raise ClusterConfigError(f"bad TLS material: {exc}") from exc
    return context


def wrap_client_socket(sock: socket.socket,
                       tls: Optional[TlsConfig],
                       host: str) -> socket.socket:
    """Wrap an outbound socket when ``tls`` is configured (no-op
    otherwise).  A failed TLS handshake surfaces as
    :class:`~repro.errors.ClusterError` so callers' reconnect loops
    treat it like any other connection failure."""
    if tls is None:
        return sock
    context = client_tls_context(tls)
    try:
        return context.wrap_socket(sock, server_hostname=host)
    except (ssl.SSLError, OSError) as exc:
        try:
            sock.close()
        except OSError:
            pass
        raise ClusterError(f"TLS handshake failed: {exc}") from exc
