"""The cluster worker: ``python -m repro worker tcp://host:port``.

A worker is one process that dials the coordinator, authenticates
with the shared secret, announces a capacity (how many jobs it will
run concurrently, each on its own thread) and then executes ``job``
frames until the coordinator says ``shutdown`` or the connection
drops.  Liveness is a dedicated heartbeat thread, so a long-running
job never makes the coordinator think this worker died -- only actual
death (or a wedged process) does.

Job execution mirrors the local pool's worker side
(:func:`repro.runtime.executor._invoke`): an optional fault plan from
the coordinator (or the inherited ``REPRO_FAULTS`` environment) is
armed first so chaos drills reach remote workers; a
:class:`~repro.obs.ResourceProbe` accounts CPU/RSS; a shipped
:class:`~repro.obs.TraceContext` re-parents the job's spans under the
submitting client's trace, and the spans ride back on the ``result``
frame (distributed span shipping, now across hosts).  The per-job
``timeout`` from the frame is enforced here with the executor's own
:func:`~repro.runtime.executor._call_with_timeout`.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from .. import obs
from ..errors import ClusterError
from ..resilience import faults
from ..runtime.executor import _call_with_timeout
from ..runtime.spec import resolve_ref
from . import protocol

_LOG = obs.get_logger("cluster.worker")


class Worker:
    """One worker process's connection to the coordinator.

    Parameters
    ----------
    url:
        ``tcp://host:port`` of the coordinator.
    secret:
        HMAC shared secret (defaults to ``REPRO_CLUSTER_SECRET``).
    capacity:
        Concurrent jobs this worker accepts (one thread each).
    name:
        Display name in ``cluster status``; defaults to
        ``<hostname>:<pid>``.
    """

    def __init__(self, url: str, secret: Optional[str] = None,
                 capacity: int = 1, name: str = ""):
        self.host, self.port = protocol.parse_url(url)
        self.secret = protocol.resolve_secret(secret)
        self.capacity = max(1, int(capacity))
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.heartbeat_interval = 0.5
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self.jobs_run = 0

    # -- lifecycle ----------------------------------------------------------

    def connect(self, timeout: float = 10.0) -> None:
        """Dial the coordinator, retrying refusals for ``timeout`` s.

        Workers and their coordinator are routinely launched together
        (CI scripts, ``&``-backgrounded shells), so losing the startup
        race must not be fatal.  Authentication failures are never
        retried -- a wrong secret will not get righter.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=10.0)
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"coordinator {self.host}:{self.port} unreachable "
                        f"after {timeout:.0f} s: {exc}") from exc
                time.sleep(0.2)
        sock.settimeout(None)
        protocol.client_handshake(
            sock, self.secret, role="worker",
            extra={"capacity": self.capacity, "name": self.name})
        self._sock = sock
        _LOG.info("worker %s connected to %s:%d (capacity %d)",
                  self.name, self.host, self.port, self.capacity)

    def run(self) -> None:
        """Connect (if needed) and serve jobs until shutdown/EOF."""
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        beat = threading.Thread(target=self._heartbeat_loop,
                                name="worker-heartbeat", daemon=True)
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    frame = protocol.recv_frame(self._sock)
                except ClusterError as exc:
                    _LOG.warning("broken frame from coordinator: %s", exc)
                    break
                if frame is None:
                    _LOG.info("coordinator closed the connection")
                    break
                kind = frame.get("type")
                if kind == "job":
                    threading.Thread(
                        target=self._run_job, args=(frame,),
                        name=f"worker-job-{frame.get('key', '')[:8]}",
                        daemon=True).start()
                elif kind == "config":
                    interval = frame.get("heartbeat_interval")
                    if interval:
                        self.heartbeat_interval = float(interval)
                elif kind == "shutdown":
                    _LOG.info("coordinator requested shutdown")
                    break
        finally:
            self.close()

    def close(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _send(self, message: Dict[str, Any]) -> None:
        if self._sock is None:
            return
        try:
            with self._send_lock:
                protocol.send_frame(self._sock, message)
        except (OSError, ClusterError) as exc:
            _LOG.warning("send to coordinator failed: %s", exc)
            self._stop.set()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            self._send({"type": "heartbeat"})

    # -- job execution ------------------------------------------------------

    def _run_job(self, frame: Dict[str, Any]) -> None:
        key = str(frame.get("key", ""))
        result: Dict[str, Any] = {"type": "result", "key": key}
        t0 = time.perf_counter()
        spans = []
        probe = obs.ResourceProbe()
        ctx_dict = frame.get("trace")
        activated = False
        try:
            plan_json = frame.get("fault_plan")
            if plan_json is not None and not faults.active():
                faults.install(faults.FaultPlan.from_json(plan_json))
            elif not faults.active():
                faults.install_from_env()
            if faults.active():
                faults.trip("executor.invoke")
            fn = resolve_ref(str(frame.get("ref", "")))
            params = dict(frame.get("params") or {})
            if ctx_dict is not None:
                obs.activate(obs.TraceContext.from_dict(ctx_dict))
                activated = True
                with obs.span("executor.job", ref=frame.get("ref"),
                              mode="cluster"):
                    value = _call_with_timeout(fn, params,
                                               frame.get("timeout"))
            else:
                value = _call_with_timeout(fn, params, frame.get("timeout"))
        except BaseException as exc:
            result["ok"] = False
            result["error"] = f"{type(exc).__name__}: {exc}".strip()
        else:
            result["ok"] = True
            try:
                result.update(protocol.encode_value(value))
            except TypeError as exc:
                result["ok"] = False
                result.pop("value", None)
                result.pop("npz", None)
                result["error"] = f"unshippable result: {exc}"
        finally:
            if activated:
                spans = obs.deactivate()
        result["wall_time"] = time.perf_counter() - t0
        if spans:
            result["spans"] = spans
        resources = probe.finish()
        if resources:
            result["resources"] = resources
        self.jobs_run += 1
        self._send(result)


def run_worker(url: str, secret: Optional[str] = None, capacity: int = 1,
               name: str = "") -> None:
    """Blocking entry point used by ``python -m repro worker``."""
    worker = Worker(url, secret=secret, capacity=capacity, name=name)
    worker.connect()
    worker.run()
