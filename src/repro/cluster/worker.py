"""The cluster worker: ``python -m repro worker tcp://host:port``.

A worker is one process that dials the coordinator, authenticates
with the shared secret, announces a capacity (how many jobs it will
run concurrently, each on its own thread) and then executes ``job``
frames until the coordinator says ``shutdown`` or the connection
drops.  Liveness is a dedicated heartbeat thread, so a long-running
job never makes the coordinator think this worker died -- only actual
death (or a wedged process) does.

Job execution mirrors the local pool's worker side
(:func:`repro.runtime.executor._invoke`): an optional fault plan from
the coordinator (or the inherited ``REPRO_FAULTS`` environment) is
armed first so chaos drills reach remote workers; a
:class:`~repro.obs.ResourceProbe` accounts CPU/RSS; a shipped
:class:`~repro.obs.TraceContext` re-parents the job's spans under the
submitting client's trace, and the spans ride back on the ``result``
frame (distributed span shipping, now across hosts).  The per-job
``timeout`` from the frame is enforced here with the executor's own
:func:`~repro.runtime.executor._call_with_timeout`.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from .. import obs
from ..errors import ClusterError
from ..resilience import faults
from ..runtime.executor import _call_with_timeout, backoff_delay
from ..runtime.spec import resolve_ref
from . import protocol

_LOG = obs.get_logger("cluster.worker")


class Worker:
    """One worker process's connection to the coordinator.

    Parameters
    ----------
    url:
        ``tcp://host:port`` of the coordinator.
    secret:
        HMAC shared secret (defaults to ``REPRO_CLUSTER_SECRET``).
    capacity:
        Concurrent jobs this worker accepts (one thread each).
    name:
        Display name in ``cluster status``; defaults to
        ``<hostname>:<pid>``.
    dial_timeout:
        How long :meth:`connect` keeps retrying a refused dial [s].
    dial_backoff:
        Base of the jittered exponential pause between dial attempts.
    reconnect_window:
        How long :meth:`run_forever` keeps redialling after losing an
        established connection before giving up [s].
    tls:
        Optional :class:`~repro.cluster.protocol.TlsConfig` matching
        the coordinator's.
    """

    def __init__(self, url: str, secret: Optional[str] = None,
                 capacity: int = 1, name: str = "",
                 dial_timeout: float = 10.0, dial_backoff: float = 0.2,
                 reconnect_window: float = 60.0,
                 tls: Optional[protocol.TlsConfig] = None):
        self.host, self.port = protocol.parse_url(url)
        self.secret = protocol.resolve_secret(secret)
        self.capacity = max(1, int(capacity))
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.heartbeat_interval = 0.5
        self.dial_timeout = max(0.0, float(dial_timeout))
        self.dial_backoff = max(0.01, float(dial_backoff))
        self.reconnect_window = max(0.0, float(reconnect_window))
        self.tls = tls
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._shutdown = False   # explicit stop/shutdown vs lost peer
        self.jobs_run = 0
        self.reconnects = 0

    # -- lifecycle ----------------------------------------------------------

    def connect(self, timeout: Optional[float] = None) -> None:
        """Dial the coordinator, retrying refusals for ``timeout`` s
        (default :attr:`dial_timeout`).

        Workers and their coordinator are routinely launched together
        (CI scripts, ``&``-backgrounded shells), so losing the startup
        race must not be fatal.  Retries pace themselves with the
        executor's jittered exponential backoff, so a fleet orphaned
        by one coordinator death does not redial in lockstep.
        Authentication failures are never retried -- a wrong secret
        will not get righter.
        """
        if timeout is None:
            timeout = self.dial_timeout
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=10.0)
                break
            except OSError as exc:
                attempt += 1
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"coordinator {self.host}:{self.port} unreachable "
                        f"after {timeout:.0f} s: {exc}") from exc
                time.sleep(backoff_delay(self.dial_backoff, attempt,
                                         cap=2.0, jitter=0.25))
        sock.settimeout(None)
        sock = protocol.wrap_client_socket(sock, self.tls, self.host)
        try:
            protocol.client_handshake(
                sock, self.secret, role="worker",
                extra={"capacity": self.capacity, "name": self.name})
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._sock = sock
        _LOG.info("worker %s connected to %s:%d (capacity %d)",
                  self.name, self.host, self.port, self.capacity)

    def run(self) -> None:
        """Connect (if needed) and serve jobs until shutdown/EOF."""
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        beat = threading.Thread(target=self._heartbeat_loop,
                                args=(self._stop,),
                                name="worker-heartbeat", daemon=True)
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    frame = protocol.recv_message(self._sock)
                except ClusterError as exc:
                    _LOG.warning("broken frame from coordinator: %s", exc)
                    break
                if frame is None:
                    _LOG.info("coordinator closed the connection")
                    break
                kind = frame.get("type")
                if kind == "job":
                    threading.Thread(
                        target=self._run_job, args=(frame,),
                        name=f"worker-job-{frame.get('key', '')[:8]}",
                        daemon=True).start()
                elif kind == "config":
                    interval = frame.get("heartbeat_interval")
                    if interval:
                        self.heartbeat_interval = float(interval)
                elif kind == "shutdown":
                    _LOG.info("coordinator requested shutdown")
                    self._shutdown = True
                    break
        finally:
            self.close()

    def run_forever(self) -> None:
        """Serve jobs across coordinator restarts.

        :meth:`run` returns when the connection drops; unless the
        drop was an explicit ``shutdown`` (frame or :meth:`stop`),
        the coordinator is assumed to be restarting -- ``cluster
        supervise`` relaunches it in well under a second -- and this
        loop redials for up to :attr:`reconnect_window` seconds
        before declaring it truly gone.  This is the worker half of
        the transparent-failover story: in-flight jobs of the old
        incarnation are replayed from its journal, so a reconnected
        worker simply receives them again.
        """
        if self._sock is None:
            self.connect()
        while True:
            self.run()
            if self._shutdown:
                return
            _LOG.warning("worker %s lost the coordinator; redialling "
                         "for up to %.0f s", self.name,
                         self.reconnect_window)
            self.reconnects += 1
            if obs.enabled():
                obs.counter("cluster.worker_reconnects").inc()
            self._redial()

    def _redial(self) -> None:
        """Reconnect within :attr:`reconnect_window`, retrying even
        handshake failures.

        A coordinator mid-restart produces connections that accept at
        the TCP level and then die before (or during) the handshake --
        which surfaces as :class:`~repro.errors.ClusterAuthError`.  On
        the *initial* dial that is fatal (a wrong secret will not get
        righter); here the previous session already authenticated, so
        the secret is known-good and the failure is the restart race,
        not the credential.
        """
        deadline = time.monotonic() + self.reconnect_window
        attempt = 0
        while True:
            self._reset()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    f"coordinator {self.host}:{self.port} did not come "
                    f"back within {self.reconnect_window:.0f} s")
            try:
                self.connect(timeout=remaining)
                return
            except ClusterError as exc:
                attempt += 1
                delay = backoff_delay(self.dial_backoff, attempt,
                                      cap=2.0, jitter=0.25)
                if time.monotonic() + delay >= deadline:
                    raise
                _LOG.debug("redial attempt %d failed (%s); retrying",
                           attempt, exc)
                time.sleep(delay)

    def stop(self) -> None:
        """Explicitly stop: :meth:`run_forever` will not redial."""
        self._shutdown = True
        self.close()

    def close(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reset(self) -> None:
        """Fresh per-connection state for a redial.  The old ``_stop``
        event stays set, so threads of the previous connection (its
        heartbeat loop, stray job senders) wind down on their own."""
        self._sock = None
        self._stop = threading.Event()

    def _send(self, message: Dict[str, Any]) -> None:
        # Snapshot socket and stop event: threads outliving a
        # reconnect (stale job senders) must not be able to stop the
        # *new* connection through a failure on the old one.
        sock = self._sock
        stop = self._stop
        if sock is None:
            return
        try:
            with self._send_lock:
                protocol.send_message(sock, message)
        except (OSError, ClusterError) as exc:
            _LOG.warning("send to coordinator failed: %s", exc)
            stop.set()

    def _heartbeat_loop(self, stop: threading.Event) -> None:
        # Bound to one connection's stop event: after a reconnect the
        # old heartbeat thread sees its (set) event and exits instead
        # of double-beating on the new socket.
        while not stop.wait(self.heartbeat_interval):
            self._send({"type": "heartbeat"})

    # -- job execution ------------------------------------------------------

    def _run_job(self, frame: Dict[str, Any]) -> None:
        key = str(frame.get("key", ""))
        result: Dict[str, Any] = {"type": "result", "key": key}
        t0 = time.perf_counter()
        spans = []
        probe = obs.ResourceProbe()
        ctx_dict = frame.get("trace")
        activated = False
        try:
            plan_json = frame.get("fault_plan")
            if plan_json is not None and not faults.active():
                faults.install(faults.FaultPlan.from_json(plan_json))
            elif not faults.active():
                faults.install_from_env()
            if faults.active():
                faults.trip("executor.invoke")
            fn = resolve_ref(str(frame.get("ref", "")))
            params = dict(frame.get("params") or {})
            if ctx_dict is not None:
                obs.activate(obs.TraceContext.from_dict(ctx_dict))
                activated = True
                with obs.span("executor.job", ref=frame.get("ref"),
                              mode="cluster"):
                    value = _call_with_timeout(fn, params,
                                               frame.get("timeout"))
            else:
                value = _call_with_timeout(fn, params, frame.get("timeout"))
        except BaseException as exc:
            result["ok"] = False
            result["error"] = f"{type(exc).__name__}: {exc}".strip()
        else:
            result["ok"] = True
            try:
                result.update(protocol.encode_value(value))
            except TypeError as exc:
                result["ok"] = False
                result.pop("value", None)
                result.pop("npz", None)
                result["error"] = f"unshippable result: {exc}"
        finally:
            if activated:
                spans = obs.deactivate()
        result["wall_time"] = time.perf_counter() - t0
        if spans:
            result["spans"] = spans
        resources = probe.finish()
        if resources:
            result["resources"] = resources
        self.jobs_run += 1
        self._send(result)


def run_worker(url: str, secret: Optional[str] = None, capacity: int = 1,
               name: str = "", dial_timeout: float = 10.0,
               dial_backoff: float = 0.2, reconnect_window: float = 60.0,
               tls: Optional[protocol.TlsConfig] = None) -> None:
    """Blocking entry point used by ``python -m repro worker``."""
    worker = Worker(url, secret=secret, capacity=capacity, name=name,
                    dial_timeout=dial_timeout, dial_backoff=dial_backoff,
                    reconnect_window=reconnect_window, tls=tls)
    worker.connect()
    worker.run_forever()
