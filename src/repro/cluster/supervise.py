"""``repro cluster supervise``: a coordinator that outlives kill -9.

The coordinator is deliberately a single process -- replicating a job
queue needs consensus machinery far outside this repository's
stdlib-only budget.  What production actually needs from it is much
cheaper: *fast, lossless restart*.  This module provides it by
composing two existing pieces:

* the shared :class:`~repro.resilience.supervisor.ProcessSupervisor`
  (the ``serve --prefork`` parent loop) forks the coordinator as a
  child and relaunches it with backoff whenever it dies unrequested --
  a ``kill -9`` heals in well under a second;
* the write-ahead journal, opened with ``resume=True``, makes the
  relaunch *lossless*: the new incarnation replays ``start``/``done``
  records, requeues interrupted jobs and serves completed keys from
  the shared disk cache (see ``Coordinator._replay_journal``).

Clients and workers ride through the gap with their own reconnect
loops (:mod:`repro.cluster.backend`, :mod:`repro.cluster.worker`), so
the net effect of killing the coordinator mid-sweep is a pause of a
few hundred milliseconds -- same truth table, ``failed == 0``, no
client-visible error.

A fixed ``--port`` is required (an ephemeral port would move on every
restart, stranding every peer); ``--pid-file`` publishes the current
child's pid so chaos drills -- CI kills the coordinator on purpose --
know whom to shoot.
"""

from __future__ import annotations

import os
import signal
from typing import Optional

from .. import obs
from ..errors import ClusterConfigError
from ..resilience.journal import JobJournal
from ..resilience.supervisor import ProcessSupervisor
from . import protocol
from .coordinator import Coordinator

__all__ = ["run_supervised"]

_LOG = obs.get_logger("cluster.supervise")


def run_supervised(host: str = "127.0.0.1", port: int = 7421,
                   cache_dir: Optional[str] = None,
                   journal_path: Optional[str] = None,
                   secret: Optional[str] = None,
                   retries: int = 2,
                   heartbeat_timeout: float = 3.0,
                   tls: Optional[protocol.TlsConfig] = None,
                   max_restarts: int = 20,
                   pid_file: Optional[str] = None) -> int:
    """Run a coordinator under restart-with-backoff supervision.

    Blocks until the supervisor exits (SIGTERM/SIGINT drain the child
    gracefully).  Returns the worst child exit code.  Raises
    :class:`~repro.errors.ClusterConfigError` for an ephemeral port,
    bad TLS material or a fork-less platform -- all before any child
    starts.
    """
    if not port:
        raise ClusterConfigError(
            "cluster supervise needs a fixed --port: an ephemeral "
            "port would change on every restart, stranding workers "
            "and clients")
    if journal_path is None:
        _LOG.warning("supervising without --journal: restarts will "
                     "lose the queue (completed results still come "
                     "from the cache)")
    if tls is not None:
        protocol.server_tls_context(tls)  # fail fast on bad material

    def _child(slot: int) -> int:
        from ..runtime.cache import DiskCache

        cache = DiskCache(root=cache_dir) if cache_dir else None
        # resume=True is the whole point: append to the predecessor's
        # journal and replay it into queue state.
        journal = (JobJournal(journal_path, resume=True)
                   if journal_path else None)
        coordinator = Coordinator(
            host=host, port=port, cache=cache, journal=journal,
            secret=secret, retries=retries,
            heartbeat_timeout=heartbeat_timeout, tls=tls)
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda *_args: coordinator.request_stop())
        replayed = coordinator.journal_replayed
        if replayed["completed"] or replayed["interrupted"]:
            _LOG.info("coordinator %d resumed: %s", os.getpid(), replayed)
        try:
            coordinator.serve_forever()
        finally:
            if journal is not None:
                journal.close()
        return 0

    def _publish_pid(pid: int, _slot: int) -> None:
        if pid_file:
            with open(pid_file, "w", encoding="utf-8") as handle:
                handle.write(f"{pid}\n")

    supervisor = ProcessSupervisor(
        _child, processes=1, max_restarts=max_restarts,
        backoff_base=0.1, backoff_cap=2.0, healthy_after=5.0,
        name="cluster.supervise",
        restart_counter="cluster.supervisor_restarts",
        on_spawn=_publish_pid)
    try:
        return supervisor.run()
    finally:
        if pid_file:
            try:
                os.unlink(pid_file)
            except OSError:
                pass
