"""The cluster coordinator: shards jobs to workers, owns the cache.

One coordinator process fronts the whole cluster.  Workers (``python
-m repro worker``) dial in, authenticate, and announce a capacity;
clients (a :class:`~repro.cluster.TcpClusterBackend` behind any
executor, or ``python -m repro cluster status``) dial in and submit
batches.  The coordinator:

* **shards** -- queued tasks go to the least-loaded live worker with
  free capacity, one ``job`` frame each;
* **deduplicates** -- tasks are keyed by the job's content key, so 64
  identical submissions (same client or many) become *one* execution
  whose result fans out to every waiter (cross-host single-flight;
  later duplicates count into ``cluster.coalesced_jobs``);
* **caches** -- it owns the shared :class:`~repro.runtime.DiskCache`:
  submissions are answered from it without touching a worker, and
  every computed result is written through, so workers on different
  hosts see one content-addressed store;
* **journals** -- the PR-4 write-ahead journal records ``start`` at
  first dispatch (with the full job descriptor) and ``done`` at the
  outcome; a coordinator restarted on the same journal *replays* it,
  requeueing interrupted jobs and serving completed keys from the
  shared cache, which is what makes ``repro cluster supervise``'s
  kill -9 recovery transparent to clients;
* **survives workers** -- a worker that disappears (socket EOF) or
  goes silent past the heartbeat timeout (partition, SIGSTOP, kernel
  OOM) has its in-flight tasks requeued on the survivors
  (``cluster.rescheduled_jobs``), with per-task attempt counting so a
  *failing* job still stops after ``retries`` genuine attempts;
* **enforces deadlines** -- a dispatched task whose worker neither
  answers nor dies within ``timeout + deadline_grace`` is requeued
  (the stuck worker keeps heartbeating, so only the deadline catches
  a wedged job).

Everything is plain threads and blocking sockets: an accept loop, one
reader thread per connection, a scheduler thread woken by a condition
variable, and a monitor thread ticking heartbeat ages and deadlines.
"""

from __future__ import annotations

import collections
import socket
import ssl
import threading
import time
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import obs
from ..errors import ClusterAuthError, ClusterError
from ..resilience.journal import JobJournal
from ..runtime.cache import ResultCache
from . import protocol

_LOG = obs.get_logger("cluster.coordinator")

#: Heartbeat interval workers are told to use (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Silence (no heartbeat, no result) after which a worker is declared
#: dead and its in-flight jobs are rescheduled.
DEFAULT_HEARTBEAT_TIMEOUT = 3.0


def _shutdown_socket(sock: socket.socket) -> None:
    """Tear a connection down from a *different* thread than its
    reader: ``shutdown()`` wakes a blocked ``recv()`` and sends the
    peer a FIN; ``close()`` alone does neither while the reader still
    holds the fd."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _WorkerConn:
    """Coordinator-side state for one connected worker."""

    def __init__(self, worker_id: int, sock: socket.socket,
                 addr: Tuple[str, int], capacity: int, name: str):
        self.id = worker_id
        self.sock = sock
        self.addr = addr
        self.capacity = max(1, capacity)
        self.name = name or f"worker-{worker_id}"
        self.inflight: Dict[str, "_Task"] = {}
        self.last_beat = time.monotonic()
        self.alive = True
        self.send_lock = threading.Lock()
        self.jobs_done = 0

    def send(self, message: Dict[str, Any]) -> None:
        with self.send_lock:
            protocol.send_message(self.sock, message)


class _ClientConn:
    """Coordinator-side state for one connected client."""

    def __init__(self, sock: socket.socket, addr: Tuple[str, int]):
        self.sock = sock
        self.addr = addr
        self.alive = True
        self.send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> bool:
        """Best-effort: a client that went away just stops receiving
        outcomes (its executor will fail the batch on its own EOF)."""
        try:
            with self.send_lock:
                protocol.send_message(self.sock, message)
            return True
        except (OSError, ClusterError):
            self.alive = False
            return False


class _Task:
    """One unit of execution, shared by every waiter for its key."""

    __slots__ = ("key", "ref", "params", "label", "timeout", "retries",
                 "fault_plan", "trace", "waiters", "attempts", "worker",
                 "deadline", "journal_started", "rescheduled")

    def __init__(self, key: str, ref: str, params: Dict[str, Any],
                 label: str, timeout: Optional[float], retries: int,
                 fault_plan: Optional[str], trace: Optional[Dict[str, Any]]):
        self.key = key
        self.ref = ref
        self.params = params
        self.label = label
        self.timeout = timeout
        self.retries = retries
        self.fault_plan = fault_plan
        self.trace = trace
        #: (client connection, client-side job id) pairs to answer.
        self.waiters: List[Tuple[_ClientConn, str]] = []
        self.attempts = 0
        self.worker: Optional[_WorkerConn] = None
        self.deadline: Optional[float] = None
        self.journal_started = False
        self.rescheduled = 0


class Coordinator:
    """Threaded TCP coordinator (see module docstring).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` / :attr:`url`).
    cache:
        The shared :class:`~repro.runtime.ResultCache` all submissions
        consult and all results write through; None disables caching.
    journal:
        Optional :class:`~repro.resilience.journal.JobJournal` for
        write-ahead ``start``/``done`` records (the CI chaos artifact).
    secret:
        HMAC shared secret; defaults to ``REPRO_CLUSTER_SECRET`` or
        the development secret.
    retries:
        Extra attempts a *failing* task gets (worker-death reschedules
        do not consume attempts).
    heartbeat_timeout:
        Declare a worker dead after this much silence [s].
    deadline_grace:
        Slack added to a task's timeout before the coordinator
        force-reschedules it [s].
    tls:
        Optional :class:`~repro.cluster.protocol.TlsConfig`; when set,
        every accepted connection is TLS-wrapped before the HMAC
        handshake (bad material raises a typed
        :class:`~repro.errors.ClusterConfigError` here, not at the
        first connection).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[JobJournal] = None,
                 secret: Optional[str] = None,
                 retries: int = 2,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 deadline_grace: float = 5.0,
                 tls: Optional[protocol.TlsConfig] = None):
        self.cache = cache
        self.journal = journal
        self.secret = protocol.resolve_secret(secret)
        self.retries = max(0, int(retries))
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.deadline_grace = deadline_grace
        self._tls_context = (protocol.server_tls_context(tls)
                             if tls is not None else None)

        # create_server sets SO_REUSEADDR on POSIX, which matters for
        # supervised restarts: the relaunched coordinator must rebind
        # the port its killed predecessor's connections still hold in
        # TIME_WAIT.
        self._server = socket.create_server((host, port))
        self._host = host
        self._port = self._server.getsockname()[1]

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: Deque[_Task] = collections.deque()
        self._tasks: Dict[str, _Task] = {}      # key -> live task
        self._workers: Dict[int, _WorkerConn] = {}
        self._clients: List[_ClientConn] = []
        self._next_worker_id = 1
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started_at = time.monotonic()

        # Counters mirrored into obs but kept here too, so
        # ``cluster status`` works with the observer disabled.
        self.completed = 0
        self.failed = 0
        self.rescheduled = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.journal_replayed = {"completed": 0, "interrupted": 0}
        if journal is not None:
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Rebuild queue state from a resumed write-ahead journal.

        Keys with a ``done`` record completed before the crash: their
        results live in the shared cache, so resubmissions
        short-circuit there and nothing is requeued.  Keys with a
        ``start`` but no ``done`` were in flight when the previous
        incarnation died: their journalled job descriptors (ref,
        params, timeout -- written at first dispatch) are requeued as
        waiterless tasks, so the work restarts even before any client
        reconnects; a reconnecting client's resubmission then joins
        the in-flight task via single-flight or hits the cache.
        """
        assert self.journal is not None
        state = self.journal.state
        self.journal_replayed["completed"] = len(state.completed)
        requeued = 0
        for key in sorted(state.interrupted):
            record = state.start_records.get(key) or {}
            ref = str(record.get("ref") or "")
            if not ref:
                continue  # pre-HA journal without job descriptors
            try:
                cached = bool(self.cache is not None
                              and self.cache.get(key)[0])
            except ValueError:
                cached = False  # malformed key in a damaged journal
            if cached:
                # Completed, but the kill landed between the cache
                # write and the done record: heal the journal instead
                # of recomputing.
                self.journal.done(key, "ok", attempts=0)
                self.journal_replayed["completed"] += 1
                continue
            task = _Task(
                key=key, ref=ref,
                params=dict(record.get("params") or {}),
                label=str(record.get("label") or "") or key[:12],
                timeout=record.get("timeout"),
                retries=int(record.get("retries", self.retries)),
                fault_plan=None, trace=None)
            task.journal_started = True
            self._tasks[key] = task
            self._queue.append(task)
            requeued += 1
        self.journal_replayed["interrupted"] = requeued
        if self.journal_replayed["completed"] or requeued:
            _LOG.info(
                "journal replay: %d completed key(s) backed by the "
                "cache, %d interrupted job(s) requeued",
                self.journal_replayed["completed"], requeued)
            obs.flight.record("cluster.journal_replayed",
                              **self.journal_replayed)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    def start(self) -> "Coordinator":
        self._spawn(self._accept_loop, "cluster-accept")
        self._spawn(self._scheduler_loop, "cluster-scheduler")
        self._spawn(self._monitor_loop, "cluster-monitor")
        _LOG.info("coordinator listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop serving: tell workers to exit, close every socket."""
        self._stop.set()
        with self._work:
            self._work.notify_all()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers.values())
            clients = list(self._clients)
        for worker in workers:
            try:
                worker.send({"type": "shutdown"})
            except (OSError, ClusterError):
                pass
            _shutdown_socket(worker.sock)
        # Shut down client connections too: a client blocked on
        # outcomes sees a clean EOF and fails its batch in place,
        # instead of waiting forever on a coordinator that will never
        # answer.  shutdown() before close(): our own reader thread is
        # blocked in recv() on the same fd, and close() alone would
        # neither wake it nor send the peer a FIN.
        for client in clients:
            _shutdown_socket(client.sock)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def kill(self) -> None:
        """Crash-stop for chaos drills: close every socket abruptly,
        *without* shutdown frames.

        Peers see the same sudden EOF a ``kill -9`` of a subprocess
        coordinator produces, so their reconnect loops engage --
        unlike :meth:`stop`, whose ``shutdown`` frame tells workers
        the cluster is over on purpose and they should exit."""
        self._stop.set()
        with self._work:
            self._work.notify_all()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = ([w.sock for w in self._workers.values()]
                     + [c.sock for c in self._clients])
        for sock in conns:
            _shutdown_socket(sock)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to unwind.  Async-signal-safe
        (sets an event, takes no locks), so it is what a SIGTERM
        handler under ``cluster supervise`` calls."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI foreground mode)."""
        self.start()
        try:
            while not self._stop.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- accept + per-connection loops --------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, addr = self._server.accept()
            except OSError:
                return  # server socket closed by stop()
            threading.Thread(target=self._handle_connection,
                             args=(sock, addr),
                             name=f"cluster-conn-{addr[1]}",
                             daemon=True).start()

    def _handle_connection(self, sock: socket.socket,
                           addr: Tuple[str, int]) -> None:
        if self._tls_context is not None:
            # Bound the handshake: a plaintext peer (or a port scanner)
            # never sends a ClientHello, and without a timeout it would
            # pin this thread forever while it waits for *our* frame.
            try:
                sock.settimeout(5.0)
                sock = self._tls_context.wrap_socket(sock, server_side=True)
                sock.settimeout(None)
            except (ssl.SSLError, OSError) as exc:
                _LOG.warning("TLS handshake from %s:%d failed: %s",
                             addr[0], addr[1], exc)
                if obs.enabled():
                    obs.counter("cluster.tls_rejected").inc()
                try:
                    sock.close()
                except OSError:
                    pass
                return
        try:
            auth = protocol.server_handshake(sock, self.secret)
        except (ClusterAuthError, ClusterError, OSError) as exc:
            _LOG.warning("rejected connection from %s:%d: %s",
                         addr[0], addr[1], exc)
            if obs.enabled():
                obs.counter("cluster.auth_rejected").inc()
            try:
                sock.close()
            except OSError:
                pass
            return
        if auth.get("role") == "worker":
            self._worker_loop(sock, addr, auth)
        else:
            self._client_loop(sock, addr)

    def _worker_loop(self, sock: socket.socket, addr: Tuple[str, int],
                     auth: Dict[str, Any]) -> None:
        with self._lock:
            worker = _WorkerConn(self._next_worker_id, sock, addr,
                                 int(auth.get("capacity", 1)),
                                 str(auth.get("name", "")))
            self._next_worker_id += 1
            self._workers[worker.id] = worker
            self._work.notify_all()
        self._update_gauges()
        _LOG.info("worker %s registered from %s:%d (capacity %d)",
                  worker.name, addr[0], addr[1], worker.capacity)
        try:
            worker.send({"type": "config",
                         "heartbeat_interval": self.heartbeat_interval})
            while not self._stop.is_set():
                try:
                    frame = protocol.recv_message(sock)
                except ClusterError as exc:
                    _LOG.warning("worker %s sent a broken frame: %s",
                                 worker.name, exc)
                    break
                if frame is None:
                    break  # EOF: process died or closed -- fast path
                kind = frame.get("type")
                if kind == "heartbeat":
                    worker.last_beat = time.monotonic()
                elif kind == "result":
                    worker.last_beat = time.monotonic()
                    self._on_result(worker, frame)
                elif kind == "goodbye":
                    break
        finally:
            self._worker_lost(worker, "connection closed")

    def _client_loop(self, sock: socket.socket,
                     addr: Tuple[str, int]) -> None:
        client = _ClientConn(sock, addr)
        with self._lock:
            self._clients.append(client)
        try:
            while not self._stop.is_set():
                try:
                    frame = protocol.recv_message(sock)
                except ClusterError as exc:
                    _LOG.warning("client %s:%d sent a broken frame: %s",
                                 addr[0], addr[1], exc)
                    break
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "submit":
                    self._on_submit(client, frame)
                elif kind == "status":
                    client.send({"type": "status", "status": self.status()})
                elif kind == "ping":
                    client.send({"type": "pong",
                                 "workers": len(self._workers)})
                elif kind == "shutdown":
                    client.send({"type": "bye"})
                    self._stop.set()
                    with self._work:
                        self._work.notify_all()
                    break
        finally:
            client.alive = False
            with self._lock:
                try:
                    self._clients.remove(client)
                except ValueError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    # -- submission: cache, single-flight, queue ----------------------------

    def _on_submit(self, client: _ClientConn, frame: Dict[str, Any]) -> None:
        jobs = frame.get("jobs") or []
        queued = 0
        for job in jobs:
            key = str(job.get("key", ""))
            job_id = str(job.get("id", key))
            if self.cache is not None:
                found, value = self.cache.get(key)
                if found:
                    self.cache_hits += 1
                    if obs.enabled():
                        obs.counter("cluster.cache_hits").inc()
                    outcome = {"type": "outcome", "id": job_id, "key": key,
                               "status": "hit", "attempts": 0,
                               "wall_time": 0.0}
                    outcome.update(protocol.encode_value(value))
                    client.send(outcome)
                    continue
            with self._lock:
                task = self._tasks.get(key)
                if task is not None:
                    # Cross-host single-flight: one execution, many
                    # waiters.
                    task.waiters.append((client, job_id))
                    self.coalesced += 1
                    if obs.enabled():
                        obs.counter("cluster.coalesced_jobs").inc()
                    continue
                task = _Task(
                    key=key, ref=str(job.get("ref", "")),
                    params=dict(job.get("params") or {}),
                    label=str(job.get("label", "")) or key[:12],
                    timeout=job.get("timeout"),
                    retries=int(job.get("retries", self.retries)),
                    fault_plan=job.get("fault_plan"),
                    trace=job.get("trace"))
                task.waiters.append((client, job_id))
                self._tasks[key] = task
                self._queue.append(task)
                queued += 1
                self._work.notify_all()
        if queued:
            self._update_gauges()
            _LOG.debug("queued %d task(s) from %s:%d", queued,
                       client.addr[0], client.addr[1])

    # -- scheduling ---------------------------------------------------------

    def _pick_worker(self) -> Optional[_WorkerConn]:
        """Least-loaded live worker with free capacity (caller holds
        the lock)."""
        best: Optional[_WorkerConn] = None
        for worker in self._workers.values():
            if not worker.alive:
                continue
            if len(worker.inflight) >= worker.capacity:
                continue
            if best is None or len(worker.inflight) < len(best.inflight):
                best = worker
        return best

    def _scheduler_loop(self) -> None:
        while True:
            with self._work:
                while (not self._stop.is_set()
                       and not (self._queue and self._pick_worker())):
                    self._work.wait(timeout=0.5)
                if self._stop.is_set():
                    return
                task = self._queue.popleft()
                worker = self._pick_worker()
                assert worker is not None
                task.worker = worker
                task.attempts += 1
                worker.inflight[task.key] = task
                if task.timeout is not None:
                    task.deadline = (time.monotonic() + task.timeout
                                     + self.deadline_grace)
            self._dispatch(task, worker)
            self._update_gauges()

    def _dispatch(self, task: _Task, worker: _WorkerConn) -> None:
        if self.journal is not None and not task.journal_started:
            # The start record carries the job descriptor itself, so a
            # restarted coordinator can requeue interrupted work from
            # the journal alone (see _replay_journal).
            self.journal.start(task.key, task.label, ref=task.ref,
                               params=task.params, timeout=task.timeout,
                               retries=task.retries)
            task.journal_started = True
        message = {"type": "job", "key": task.key, "ref": task.ref,
                   "params": task.params, "label": task.label,
                   "timeout": task.timeout, "attempt": task.attempts}
        if task.fault_plan is not None:
            message["fault_plan"] = task.fault_plan
        if task.trace is not None:
            message["trace"] = task.trace
        try:
            worker.send(message)
        except (OSError, ClusterError) as exc:
            _LOG.warning("dispatch to worker %s failed (%s); requeueing",
                         worker.name, exc)
            self._worker_lost(worker, "send failed")
        else:
            if obs.enabled():
                obs.counter("cluster.jobs_dispatched").inc()

    # -- results ------------------------------------------------------------

    def _on_result(self, worker: _WorkerConn, frame: Dict[str, Any]) -> None:
        key = str(frame.get("key", ""))
        with self._work:
            task = worker.inflight.pop(key, None)
            if task is not None:
                self._work.notify_all()  # a capacity slot just freed
        if task is None:
            # A reschedule beat this worker to it: the task already
            # ran (or is running) elsewhere; drop the duplicate.
            if obs.enabled():
                obs.counter("cluster.duplicate_results").inc()
            return
        worker.jobs_done += 1
        if frame.get("ok"):
            try:
                value = protocol.decode_value(frame)
            except Exception as exc:  # undecodable result = failure
                self._task_failed(task, f"undecodable result: {exc}",
                                  frame)
                self._update_gauges()
                return
            self._task_done(task, value, frame)
        else:
            self._task_failed(task, str(frame.get("error", "worker error")),
                              frame)
        self._update_gauges()

    def _task_done(self, task: _Task, value: Any,
                   frame: Dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.put(task.key, value)
        if self.journal is not None:
            self.journal.done(task.key, "ok", attempts=task.attempts)
        with self._lock:
            self._tasks.pop(task.key, None)
            waiters = list(task.waiters)
        self.completed += 1
        if obs.enabled():
            obs.counter("cluster.jobs_completed").inc()
        outcome = {"type": "outcome", "key": task.key, "status": "ok",
                   "attempts": task.attempts,
                   "wall_time": float(frame.get("wall_time", 0.0)),
                   "rescheduled": task.rescheduled,
                   "value": frame.get("value")}
        if frame.get("npz") is not None:
            outcome["npz"] = frame.get("npz")
        if frame.get("spans"):
            outcome["spans"] = frame["spans"]
        if frame.get("resources"):
            outcome["resources"] = frame["resources"]
        for client, job_id in waiters:
            reply = dict(outcome)
            reply["id"] = job_id
            client.send(reply)

    def _task_failed(self, task: _Task, error: str,
                     frame: Dict[str, Any]) -> None:
        if task.attempts <= task.retries:
            _LOG.warning("task %s attempt %d failed (%s); retrying",
                         task.label, task.attempts, error)
            if obs.enabled():
                obs.counter("cluster.retries").inc()
            with self._work:
                task.worker = None
                task.deadline = None
                self._queue.append(task)
                self._work.notify_all()
            return
        if self.journal is not None:
            self.journal.done(task.key, "failed", attempts=task.attempts)
        with self._lock:
            self._tasks.pop(task.key, None)
            waiters = list(task.waiters)
        self.failed += 1
        if obs.enabled():
            obs.counter("cluster.jobs_failed").inc()
        obs.flight.record("cluster.job_failed", label=task.label,
                          attempts=task.attempts, error=error)
        for client, job_id in waiters:
            client.send({"type": "outcome", "id": job_id, "key": task.key,
                         "status": "failed", "error": error,
                         "attempts": task.attempts,
                         "wall_time": float(frame.get("wall_time", 0.0)),
                         "rescheduled": task.rescheduled})

    # -- failure detection --------------------------------------------------

    def _worker_lost(self, worker: _WorkerConn, reason: str) -> None:
        with self._lock:
            if not worker.alive:
                return  # already handled by the other detection path
            worker.alive = False
            self._workers.pop(worker.id, None)
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
            for task in orphans:
                # A death is not the job's fault: the attempt is
                # refunded so a killed worker cannot burn a task's
                # retry budget.
                task.attempts -= 1
                task.worker = None
                task.deadline = None
                task.rescheduled += 1
                self._queue.append(task)
            self.rescheduled += len(orphans)
            self._work.notify_all()
        try:
            worker.sock.close()
        except OSError:
            pass
        if orphans:
            _LOG.warning("worker %s lost (%s); rescheduling %d in-flight "
                         "job(s)", worker.name, reason, len(orphans))
            if obs.enabled():
                obs.counter("cluster.rescheduled_jobs").inc(len(orphans))
            obs.flight.record("cluster.worker_lost", worker=worker.name,
                              reason=reason, rescheduled=len(orphans))
            obs.flight.auto_dump(reason="cluster.worker_lost")
        else:
            _LOG.info("worker %s disconnected (%s)", worker.name, reason)
        self._update_gauges()

    def _monitor_loop(self) -> None:
        tick = max(0.05, min(self.heartbeat_timeout / 4.0, 0.5))
        while not self._stop.wait(tick):
            now = time.monotonic()
            with self._lock:
                silent = [w for w in self._workers.values()
                          if now - w.last_beat > self.heartbeat_timeout]
                expired = []
                for worker in self._workers.values():
                    for task in list(worker.inflight.values()):
                        if task.deadline is not None and now > task.deadline:
                            expired.append((worker, task))
            for worker in silent:
                _LOG.warning("worker %s missed heartbeats for %.1f s",
                             worker.name, now - worker.last_beat)
                if obs.enabled():
                    obs.counter("cluster.heartbeat_timeouts").inc()
                self._worker_lost(worker, "heartbeat timeout")
            for worker, task in expired:
                with self._work:
                    if worker.inflight.pop(task.key, None) is None:
                        continue  # its result just arrived
                    _LOG.warning("task %s exceeded its deadline on worker "
                                 "%s; rescheduling", task.label, worker.name)
                    if obs.enabled():
                        obs.counter("cluster.deadline_expired").inc()
                    task.worker = None
                    task.deadline = None
                    task.rescheduled += 1
                    self.rescheduled += 1
                    self._queue.append(task)
                    self._work.notify_all()
                if obs.enabled():
                    obs.counter("cluster.rescheduled_jobs").inc()

    # -- introspection ------------------------------------------------------

    def _update_gauges(self) -> None:
        if not obs.enabled():
            return
        with self._lock:
            inflight = sum(len(w.inflight) for w in self._workers.values())
            obs.gauge("cluster.workers").set(len(self._workers))
            obs.gauge("cluster.jobs_inflight").set(inflight)
            obs.gauge("cluster.jobs_queued").set(len(self._queue))

    def status(self) -> Dict[str, Any]:
        """Snapshot for ``python -m repro cluster status``."""
        now = time.monotonic()
        with self._lock:
            workers = [{
                "id": w.id, "name": w.name,
                "addr": f"{w.addr[0]}:{w.addr[1]}",
                "capacity": w.capacity,
                "inflight": len(w.inflight),
                "jobs_done": w.jobs_done,
                "last_heartbeat_age_s": round(now - w.last_beat, 3),
            } for w in sorted(self._workers.values(), key=lambda w: w.id)]
            queued = len(self._queue)
            inflight = sum(len(w.inflight) for w in self._workers.values())
        return {
            "url": self.url,
            "uptime_s": round(now - self._started_at, 3),
            "workers": workers,
            "queued": queued,
            "queue_depth": queued + inflight,
            "inflight": inflight,
            "completed": self.completed,
            "failed": self.failed,
            "rescheduled": self.rescheduled,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "journal_replayed": dict(self.journal_replayed),
        }
