"""Client side of the cluster: :class:`TcpClusterBackend`.

``Executor(backend=TcpClusterBackend("tcp://host:port"))`` -- or the
equivalent ``python -m repro sweep --backend tcp://host:port`` -- makes
the executor ship its cache misses to a coordinator instead of a local
process pool.  The executor still does everything it always did
(cache lookup, write-through commit, journalling, telemetry); only
the execution mechanism changes, which is what keeps the
backend-conformance contract (bit-identical results, identical
cache-hit accounting) trivially true.

Each :meth:`TcpClusterBackend.execute` call opens its *own*
authenticated connection, so concurrent batches (e.g. parallel serve
requests sharing one backend object) never serialize behind a shared
socket conversation.  Non-portable jobs (closures -- nothing to name
in a frame) quietly run on the executor's serial path, exactly like
the local pool treats them.

A coordinator that is unreachable, or reachable but workerless,
raises :class:`~repro.errors.ClusterConfigError` before any job is
sent.  A connection lost *mid-batch* triggers the reconnect loop: the
backend redials with capped, jittered exponential backoff for up to
``reconnect_window`` seconds and resubmits the outstanding jobs --
resubmission is idempotent because jobs are keyed by content key, so
the coordinator's cache and single-flight machinery dedupe anything
that already ran (a supervised coordinator restart is invisible to
the sweep: same truth table, ``failed == 0``).  Only when the window
expires do the still-outstanding jobs fail in place (status
``failed``, error ``cluster connection lost``) rather than raising,
so a sweep keeps every result that did come back.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

from .. import obs
from ..errors import ClusterAuthError, ClusterConfigError, ClusterError
from ..resilience import faults
from ..runtime.backend import ExecutorBackend, PendingJob
from ..runtime.executor import backoff_delay
from ..runtime.report import (
    MODE_CACHED,
    MODE_CLUSTER,
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_OK,
    JobRecord,
    utc_now_iso,
)
from . import protocol

_LOG = obs.get_logger("cluster.backend")


class ClusterClient:
    """One authenticated client connection to a coordinator."""

    def __init__(self, url: str, secret: Optional[str] = None,
                 connect_timeout: float = 5.0,
                 tls: Optional[protocol.TlsConfig] = None):
        self.url = url
        self.host, self.port = protocol.parse_url(url)
        self.secret = protocol.resolve_secret(secret)
        self.connect_timeout = connect_timeout
        self.tls = tls
        self._sock: Optional[socket.socket] = None

    def connect(self) -> "ClusterClient":
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.connect_timeout)
        except OSError as exc:
            raise ClusterConfigError(
                f"cannot reach cluster coordinator at {self.url}: {exc} "
                "-- is `python -m repro cluster start` running there?")
        sock.settimeout(None)
        sock = protocol.wrap_client_socket(sock, self.tls, self.host)
        try:
            protocol.client_handshake(sock, self.secret, role="client")
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ClusterClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request/response helpers -------------------------------------------

    def _roundtrip(self, message: Dict[str, Any],
                   expect: str) -> Dict[str, Any]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        protocol.send_message(self._sock, message)
        reply = protocol.recv_message(self._sock)
        if reply is None:
            raise ClusterError(
                f"coordinator at {self.url} closed the connection")
        if reply.get("type") != expect:
            raise ClusterError(
                f"expected a {expect!r} frame, got {reply.get('type')!r}")
        return reply

    def ping(self) -> Dict[str, Any]:
        """Reachability probe; the reply carries the worker count."""
        return self._roundtrip({"type": "ping"}, "pong")

    def status(self) -> Dict[str, Any]:
        """The coordinator's :meth:`~Coordinator.status` snapshot."""
        return self._roundtrip({"type": "status"}, "status")["status"]

    def shutdown(self) -> None:
        """Ask the coordinator to stop (``repro cluster stop``)."""
        try:
            self._roundtrip({"type": "shutdown"}, "bye")
        except ClusterError:
            pass  # it stopped before answering; mission accomplished

    def require_ready(self, min_workers: int = 1) -> int:
        """Connect and verify at least ``min_workers`` are attached.

        Returns the worker count; raises
        :class:`~repro.errors.ClusterConfigError` (never a raw socket
        traceback) when the coordinator is unreachable or idle-handed.
        """
        workers = int(self.ping().get("workers", 0))
        if workers < min_workers:
            raise ClusterConfigError(
                f"cluster coordinator at {self.url} has {workers} "
                f"connected worker(s), need >= {min_workers}; start some "
                f"with `python -m repro worker {self.url}`")
        return workers


class TcpClusterBackend(ExecutorBackend):
    """Ship an executor's cache misses to a cluster coordinator.

    Parameters
    ----------
    url:
        ``tcp://host:port`` of the coordinator.
    secret:
        HMAC shared secret (defaults to ``REPRO_CLUSTER_SECRET``).
    min_workers:
        Fail fast (:class:`~repro.errors.ClusterConfigError`) unless
        this many workers are attached when a batch starts.
    reconnect_window:
        After a *mid-batch* connection loss, keep redialling (and
        resubmitting the outstanding jobs) for this many seconds
        before failing them in place; 0 restores the old
        fail-immediately behaviour.
    reconnect_backoff:
        Base of the capped, jittered exponential pause between
        redials.
    tls:
        Optional :class:`~repro.cluster.protocol.TlsConfig` matching
        the coordinator's.
    """

    name = "tcp"

    def __init__(self, url: str, secret: Optional[str] = None,
                 min_workers: int = 1, reconnect_window: float = 30.0,
                 reconnect_backoff: float = 0.2,
                 tls: Optional[protocol.TlsConfig] = None):
        protocol.parse_url(url)  # validate eagerly: bad URLs fail at build
        self.url = url
        self.secret = secret
        self.min_workers = max(0, int(min_workers))
        self.reconnect_window = max(0.0, float(reconnect_window))
        self.reconnect_backoff = max(0.01, float(reconnect_backoff))
        self.tls = tls

    def describe(self) -> str:
        return f"tcp({self.url})"

    def execute(self, executor, pending: List[PendingJob],
                outcomes: List[Optional[Any]]) -> None:
        from ..runtime.executor import JobOutcome

        remote = [job for job in pending if job[1].portable]
        local = [job for job in pending if not job[1].portable]
        if local:
            _LOG.debug("%d non-portable job(s) run in-process instead of "
                       "on the cluster", len(local))

        if remote:
            self._execute_remote(executor, remote, outcomes, JobOutcome)

        for index, spec, key in local:
            outcomes[index] = executor._run_serial(spec, key)
            executor._commit(outcomes[index])

    # -- the remote path ----------------------------------------------------

    def _execute_remote(self, executor, remote: List[PendingJob],
                        outcomes: List[Optional[Any]], JobOutcome) -> None:
        client = ClusterClient(self.url, secret=self.secret,
                               tls=self.tls).connect()
        try:
            if self.min_workers:
                client.require_ready(self.min_workers)
        except BaseException:
            client.close()
            raise
        self._submit_and_collect(executor, remote, outcomes, JobOutcome,
                                 client)

    def _reconnect(self, deadline: float) -> ClusterClient:
        """Redial (and re-verify worker availability) until ``deadline``.

        Everything is retried with capped, jittered backoff: refused
        dials while the supervisor relaunches the coordinator, a
        coordinator whose workers have not re-joined yet -- and even
        handshake failures, because a coordinator mid-restart yields
        connections that accept and then die before the challenge,
        which is indistinguishable from an auth failure on the wire.
        The *initial* connection already proved the secret right; if
        it somehow did change, the window expiring surfaces the last
        error.
        """
        attempt = 0
        while True:
            try:
                fresh = ClusterClient(self.url, secret=self.secret,
                                      tls=self.tls).connect()
                try:
                    if self.min_workers:
                        fresh.require_ready(self.min_workers)
                except BaseException:
                    fresh.close()
                    raise
                return fresh
            except (ClusterError, OSError) as exc:
                attempt += 1
                delay = backoff_delay(self.reconnect_backoff, attempt,
                                      cap=2.0, jitter=0.25)
                if time.monotonic() + delay >= deadline:
                    raise ClusterError(
                        f"coordinator at {self.url} did not come back "
                        f"within {self.reconnect_window:.0f} s: "
                        f"{exc}") from exc
                time.sleep(delay)

    def _submit_and_collect(self, executor, remote: List[PendingJob],
                            outcomes, JobOutcome,
                            client: ClusterClient) -> None:
        trace_id = obs.current_trace_id()
        ctx = obs.current_context()
        plan = faults.installed_plan()
        started = utc_now_iso()
        by_id: Dict[str, PendingJob] = {}
        frames: Dict[str, Dict[str, Any]] = {}
        for index, spec, key in remote:
            job_id = str(index)
            by_id[job_id] = (index, spec, key)
            if executor.journal is not None:
                executor.journal.start(key, spec.display_label)
            if obs.enabled():
                obs.counter("executor.executed").inc()
            job = {"id": job_id, "key": key, "ref": spec.ref,
                   "params": spec.param_dict(),
                   "label": spec.display_label,
                   "timeout": executor.timeout,
                   "retries": executor.retries}
            if plan is not None:
                job["fault_plan"] = plan.to_json()
            if ctx is not None:
                job["trace"] = ctx.as_dict()
            frames[job_id] = job

        deadline: Optional[float] = None
        lost: Optional[str] = None
        resubmits = 0
        try:
            while by_id:
                assert client._sock is not None
                sock = client._sock
                try:
                    protocol.send_message(sock, {
                        "type": "submit",
                        "jobs": [frames[job_id] for job_id in by_id]})
                    while by_id:
                        frame = protocol.recv_message(sock)
                        if frame is None:
                            raise ClusterError("cluster connection lost")
                        if frame.get("type") != "outcome":
                            continue  # tolerate informational frames
                        job = by_id.pop(str(frame.get("id")), None)
                        if job is None:
                            continue
                        index, spec, key = job
                        outcomes[index] = self._outcome(
                            spec, key, frame, trace_id, started, JobOutcome)
                        executor._commit(outcomes[index])
                except ClusterAuthError as exc:
                    lost = str(exc) or type(exc).__name__
                    break
                except (OSError, ClusterError) as exc:
                    reason = str(exc) or type(exc).__name__
                    client.close()
                    if deadline is None:
                        # The window starts at the *first* loss, not
                        # per-retry, so a flapping coordinator cannot
                        # stall a batch forever.
                        deadline = time.monotonic() + self.reconnect_window
                    if (self.reconnect_window <= 0
                            or time.monotonic() >= deadline):
                        lost = reason
                        break
                    _LOG.warning(
                        "cluster connection lost (%s) with %d job(s) "
                        "outstanding; reconnecting for up to %.0f s",
                        reason, len(by_id), self.reconnect_window)
                    if obs.enabled():
                        obs.counter("cluster.client_reconnects").inc()
                    try:
                        client = self._reconnect(deadline)
                    except (ClusterError, OSError) as exc2:
                        lost = str(exc2) or type(exc2).__name__
                        break
                    resubmits += 1
                    if obs.enabled():
                        obs.counter("cluster.client_resubmitted_jobs") \
                           .inc(len(by_id))
                    # Loop around: resubmit the outstanding jobs on
                    # the fresh connection.  Content keys make this
                    # idempotent -- anything that completed before the
                    # crash comes back instantly as a cache hit, and
                    # anything still running coalesces via
                    # single-flight.
        finally:
            client.close()
        if lost is None:
            if resubmits:
                _LOG.info("cluster batch recovered after %d "
                          "reconnect(s)", resubmits)
            return
        # The coordinator (or the network to it) stayed away past the
        # reconnect window: jobs whose outcomes never arrived fail in
        # place, everything already received stays.
        _LOG.warning("cluster batch aborted after %d of %d outcome(s): %s",
                     len(remote) - len(by_id), len(remote), lost)
        if obs.enabled():
            obs.counter("cluster.client_aborted_jobs").inc(len(by_id))
        for index, spec, key in by_id.values():
            outcomes[index] = JobOutcome(
                spec, key, None,
                JobRecord(label=spec.display_label, key=key,
                          status=STATUS_FAILED, mode=MODE_CLUSTER,
                          attempts=1, error=f"cluster connection lost: "
                          f"{lost}", started_at=started,
                          trace_id=trace_id))
            executor._commit(outcomes[index])

    def _outcome(self, spec, key: str, frame: Dict[str, Any],
                 trace_id: Optional[str], started: str, JobOutcome):
        status = frame.get("status")
        if frame.get("spans"):
            obs.ingest(frame["spans"])
        if status == "hit":
            value = protocol.decode_value(frame)
            record = JobRecord(label=spec.display_label, key=key,
                               status=STATUS_HIT, mode=MODE_CACHED,
                               attempts=0, started_at=started,
                               trace_id=trace_id,
                               notes="cluster-cache")
            return JobOutcome(spec, key, value, record)
        if status == "ok":
            value = protocol.decode_value(frame)
            record = JobRecord(label=spec.display_label, key=key,
                               status=STATUS_OK, mode=MODE_CLUSTER,
                               attempts=int(frame.get("attempts", 1)),
                               wall_time=float(frame.get("wall_time", 0.0)),
                               started_at=started, trace_id=trace_id)
            rescheduled = int(frame.get("rescheduled", 0))
            if rescheduled:
                record.notes = f"rescheduled x{rescheduled}"
            record.set_resources(frame.get("resources"))
            return JobOutcome(spec, key, value, record)
        record = JobRecord(label=spec.display_label, key=key,
                           status=STATUS_FAILED, mode=MODE_CLUSTER,
                           attempts=int(frame.get("attempts", 1)),
                           wall_time=float(frame.get("wall_time", 0.0)),
                           error=str(frame.get("error", "cluster failure")),
                           started_at=started, trace_id=trace_id)
        return JobOutcome(spec, key, None, record)
