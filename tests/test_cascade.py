"""Cascade-depth / repeater-planning tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.cascade import CascadeAnalyzer, StageModel, triangle_stage_model
from repro.circuits.components import Repeater
from repro.physics import AttenuationModel


@pytest.fixture
def analyzer():
    return CascadeAnalyzer(AttenuationModel(decay_length=3.3e-6),
                           min_detectable=0.05)


class TestStageModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StageModel(transmission=0.0)
        with pytest.raises(ValueError):
            StageModel(transmission=1.5)
        with pytest.raises(ValueError):
            StageModel(transmission=0.5, path_length=-1.0)

    def test_triangle_models(self):
        worst = triangle_stage_model(worst_case=True)
        best = triangle_stage_model(worst_case=False)
        assert worst.transmission == pytest.approx(0.083)
        assert best.transmission == pytest.approx(1.0)


class TestBudget:
    def test_stage_factor_combines_losses(self, analyzer):
        stage = StageModel(transmission=0.5, path_length=3.3e-6)
        assert analyzer.stage_factor(stage) == pytest.approx(
            0.5 * math.exp(-1.0))

    def test_amplitude_after_chain(self, analyzer):
        stage = StageModel(transmission=0.5)
        assert analyzer.amplitude_after([stage] * 3) == pytest.approx(0.125)

    def test_max_depth_formula(self, analyzer):
        stage = StageModel(transmission=0.5)
        # 0.5^n >= 0.05 -> n <= 4.32 -> 4 stages.
        assert analyzer.max_depth(stage) == 4

    def test_lossless_chain_unbounded(self):
        analyzer = CascadeAnalyzer(AttenuationModel(), min_detectable=0.05)
        assert analyzer.max_depth(StageModel(transmission=1.0)) >= 10 ** 6

    def test_dead_input(self, analyzer):
        assert analyzer.max_depth(StageModel(transmission=0.5),
                                  input_amplitude=0.01) == 0


class TestRepeaterPlanning:
    def test_no_repeaters_when_in_budget(self, analyzer):
        stage = StageModel(transmission=0.9)
        report = analyzer.plan([stage] * 3)
        assert report.repeater_positions == ()
        assert report.total_repeater_energy == 0.0
        assert report.final_amplitude == pytest.approx(0.9 ** 3)

    def test_repeaters_inserted_when_needed(self, analyzer):
        stage = StageModel(transmission=0.5)
        report = analyzer.plan([stage] * 10)
        assert len(report.repeater_positions) > 0
        assert report.final_amplitude >= analyzer.min_detectable

    def test_amplitude_never_dips_below_threshold(self, analyzer):
        stage = StageModel(transmission=0.45)
        stages = [stage] * 12
        report = analyzer.plan(stages)
        # Re-simulate the plan and verify the invariant.
        amplitude = 1.0
        for index, s in enumerate(stages):
            if index in report.repeater_positions:
                amplitude = analyzer.repeater.nominal_amplitude
            amplitude *= analyzer.stage_factor(s)
            assert amplitude >= analyzer.min_detectable - 1e-12

    def test_infeasible_stage_detected(self, analyzer):
        lethal = StageModel(transmission=0.01)
        with pytest.raises(ValueError, match="infeasible"):
            analyzer.plan([StageModel(transmission=0.9), lethal])

    def test_energy_and_delay_scale_with_repeaters(self, analyzer):
        stage = StageModel(transmission=0.4)
        report = analyzer.plan([stage] * 15)
        n = len(report.repeater_positions)
        assert report.total_repeater_energy == pytest.approx(
            n * analyzer.repeater.energy)
        assert report.added_delay == pytest.approx(
            n * analyzer.repeater.delay)

    @given(st.floats(min_value=0.3, max_value=0.95),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_plan_always_ends_detectable(self, transmission, depth):
        analyzer = CascadeAnalyzer(AttenuationModel(),
                                   min_detectable=0.05)
        report = analyzer.plan([StageModel(transmission=transmission)]
                               * depth)
        assert report.final_amplitude >= analyzer.min_detectable - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            CascadeAnalyzer(AttenuationModel(), min_detectable=0.0)
        with pytest.raises(ValueError):
            CascadeAnalyzer(AttenuationModel(), min_detectable=1.0)
