"""Construction-level tests for the scaled LLG gate experiments.

(The physics run lives in ``benchmarks/bench_llg_gate.py`` -- each
input pattern is a ~minute of magnetisation dynamics.)
"""

import math

import pytest

from repro.core.layout import validate_phase_design
from repro.micromag.gate_experiment import (
    LlgGateExperiment,
    scaled_maj3_experiment,
    scaled_xor_experiment,
)
from repro.physics import FECOB, DispersionRelation, FilmStack


class TestScaledXor:
    def test_geometry_scales_with_frequency(self):
        experiment = scaled_xor_experiment(frequency=28e9)
        film = FilmStack(material=FECOB, thickness=1e-9)
        expected_lambda = DispersionRelation(film).wavelength(28e9)
        assert experiment.wavelength == pytest.approx(expected_lambda)
        dims = experiment.fabricated.layout.dimensions
        assert dims.d1 == pytest.approx(2 * expected_lambda)

    def test_phase_design_still_valid(self):
        experiment = scaled_xor_experiment()
        checks = validate_phase_design(experiment.fabricated.layout)
        assert all(checks.values()), checks

    def test_terminals_present(self):
        fab = scaled_xor_experiment().fabricated
        assert set(fab.terminal_masks) == {"I1", "I2", "O1", "O2"}

    def test_settle_time_covers_flight(self):
        experiment = scaled_xor_experiment()
        lx, ly, _ = experiment.fabricated.mesh.extent
        film = FilmStack(material=FECOB, thickness=1e-9)
        disp = DispersionRelation(film)
        v_g = float(disp.group_velocity(
            2 * math.pi / experiment.wavelength))
        assert experiment.settle_time > math.hypot(lx, ly) / v_g

    def test_bit_count_enforced(self):
        experiment = scaled_xor_experiment()
        with pytest.raises(ValueError, match="expected 2 bits"):
            experiment.run_case((0, 1, 1))


class TestScaledMaj3:
    def test_geometry(self):
        experiment = scaled_maj3_experiment()
        layout = experiment.fabricated.layout
        assert layout.kind == "maj3"
        assert set(experiment.input_names) == {"I1", "I2", "I3"}
        checks = validate_phase_design(layout)
        assert all(checks.values()), checks

    def test_canvas_is_laptop_scale(self):
        fab = scaled_maj3_experiment().fabricated
        ny, nx = fab.mask.shape
        assert nx * ny < 30000  # a CPU-minutes problem, not GPU-hours
