"""LLG right-hand-side and integrator tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.constants import GAMMA_LL, MU0
from repro.micromag import (
    HeunIntegrator,
    Mesh,
    RK4Integrator,
    RK45Integrator,
    cross,
    llg_rhs,
    normalize_field,
)

unit_vectors = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda v: 0.1 < math.hypot(*v))


def _field_from(vec, mesh):
    v = np.asarray(vec, dtype=float)
    v = v / np.linalg.norm(v)
    out = mesh.zeros_vector()
    for c in range(3):
        out[c] = v[c]
    return out


class TestCross:
    def test_unit_axes(self, single_cell_mesh):
        x = _field_from((1, 0, 0), single_cell_mesh)
        y = _field_from((0, 1, 0), single_cell_mesh)
        z = cross(x, y)
        assert np.allclose(z[2], 1.0)
        assert np.allclose(z[0], 0.0)

    def test_anticommutative(self, single_cell_mesh, rng):
        a = rng.standard_normal(single_cell_mesh.field_shape)
        b = rng.standard_normal(single_cell_mesh.field_shape)
        assert np.allclose(cross(a, b), -cross(b, a))

    def test_self_cross_zero(self, single_cell_mesh, rng):
        a = rng.standard_normal(single_cell_mesh.field_shape)
        assert np.allclose(cross(a, a), 0.0, atol=1e-12)

    def test_matches_numpy(self, single_cell_mesh, rng):
        a = rng.standard_normal(single_cell_mesh.field_shape)
        b = rng.standard_normal(single_cell_mesh.field_shape)
        ours = cross(a, b)[:, 0, 0, 0]
        theirs = np.cross(a[:, 0, 0, 0], b[:, 0, 0, 0])
        assert np.allclose(ours, theirs)


class TestRhs:
    @given(unit_vectors, unit_vectors)
    @settings(max_examples=30, deadline=None)
    def test_derivative_orthogonal_to_m(self, mvec, hvec):
        mesh = Mesh(cell_size=(1e-9,) * 3, shape=(1, 1, 1))
        m = _field_from(mvec, mesh)
        h = _field_from(hvec, mesh) * 1e5
        dmdt = llg_rhs(m, h, GAMMA_LL, np.array(0.01))
        dot = np.sum(dmdt * m, axis=0)
        # |m| = 1, so m . dm/dt must vanish to floating precision of
        # the torque scale gamma mu0 |H|.
        torque_scale = GAMMA_LL * MU0 * 1e5
        assert np.allclose(dot, 0.0, atol=1e-9 * torque_scale)

    def test_aligned_state_is_stationary(self, single_cell_mesh):
        m = _field_from((0, 0, 1), single_cell_mesh)
        h = _field_from((0, 0, 1), single_cell_mesh) * 1e5
        dmdt = llg_rhs(m, h, GAMMA_LL, np.array(0.01))
        assert np.allclose(dmdt, 0.0, atol=1e-6)

    def test_damping_pushes_toward_field(self, single_cell_mesh):
        m = _field_from((1, 0, 0), single_cell_mesh)
        h = _field_from((0, 0, 1), single_cell_mesh) * 1e5
        dmdt = llg_rhs(m, h, GAMMA_LL, np.array(0.1))
        # z component must grow (alignment), with alpha > 0.
        assert dmdt[2, 0, 0, 0] > 0.0

    def test_zero_damping_pure_precession(self, single_cell_mesh):
        m = _field_from((1, 0, 0), single_cell_mesh)
        h = _field_from((0, 0, 1), single_cell_mesh) * 1e5
        dmdt = llg_rhs(m, h, GAMMA_LL, np.array(0.0))
        # No component along z (no alignment without damping).
        assert dmdt[2, 0, 0, 0] == pytest.approx(0.0, abs=1e-10)
        # Precession: -gamma mu0 m x H has dm/dt along -y for m=x, H=z.
        # m x H = x_hat x z_hat = -y_hat -> dm/dt = +gamma mu0 |H| y_hat.
        assert dmdt[1, 0, 0, 0] > 0.0

    def test_precession_rate(self, single_cell_mesh):
        m = _field_from((1, 0, 0), single_cell_mesh)
        h_mag = 1e5
        h = _field_from((0, 0, 1), single_cell_mesh) * h_mag
        dmdt = llg_rhs(m, h, GAMMA_LL, np.array(0.0))
        assert abs(dmdt[1, 0, 0, 0]) == pytest.approx(
            GAMMA_LL * MU0 * h_mag, rel=1e-9)


class _ConstantFieldRHS:
    """dm/dt for a fixed uniform field (analytic macrospin problem)."""

    def __init__(self, h_field, alpha):
        self.h = h_field
        self.alpha = np.array(alpha)

    def __call__(self, t, m):
        return llg_rhs(m, self.h, GAMMA_LL, self.alpha)


class TestIntegrators:
    def _setup(self, alpha):
        mesh = Mesh(cell_size=(2e-9,) * 3, shape=(1, 1, 1))
        m = _field_from((0.1, 0.0, 1.0), mesh)
        h = _field_from((0, 0, 1), mesh) * 1e6
        return mesh, m, _ConstantFieldRHS(h, alpha)

    def test_rk4_norm_preserved(self):
        mesh, m, rhs = self._setup(alpha=0.0)
        integrator = RK4Integrator(rhs)
        for _ in range(500):
            m = integrator.step(0.0, m, 2e-14)
        norm = math.sqrt(float(np.sum(m[:, 0, 0, 0] ** 2)))
        assert norm == pytest.approx(1.0, abs=1e-12)

    def test_rk4_conserves_mz_without_damping(self):
        mesh, m, rhs = self._setup(alpha=0.0)
        mz0 = m[2, 0, 0, 0]
        integrator = RK4Integrator(rhs)
        for _ in range(500):
            m = integrator.step(0.0, m, 2e-14)
        assert m[2, 0, 0, 0] == pytest.approx(mz0, abs=1e-6)

    def test_rk4_damps_toward_field(self):
        mesh, m, rhs = self._setup(alpha=0.1)
        mz0 = m[2, 0, 0, 0]
        integrator = RK4Integrator(rhs)
        for _ in range(2000):
            m = integrator.step(0.0, m, 2e-14)
        assert m[2, 0, 0, 0] > mz0

    def test_rk4_precession_frequency(self):
        # One full precession period: T = 2 pi / (gamma mu0 H).
        mesh, m, rhs = self._setup(alpha=0.0)
        h_mag = 1e6
        period = 2.0 * math.pi / (GAMMA_LL * MU0 * h_mag)
        n_steps = 400
        dt = period / n_steps
        integrator = RK4Integrator(rhs)
        mx0 = m[0, 0, 0, 0]
        my0 = m[1, 0, 0, 0]
        for _ in range(n_steps):
            m = integrator.step(0.0, m, dt)
        assert m[0, 0, 0, 0] == pytest.approx(mx0, abs=1e-4)
        assert m[1, 0, 0, 0] == pytest.approx(my0, abs=1e-4)

    def test_heun_matches_rk4_deterministic(self):
        mesh, m_rk, rhs = self._setup(alpha=0.02)
        m_heun = m_rk.copy()
        rk4 = RK4Integrator(rhs)
        heun = HeunIntegrator(rhs)
        for _ in range(200):
            m_rk = rk4.step(0.0, m_rk, 1e-14)
            m_heun = heun.step(0.0, m_heun, 1e-14)
        assert np.allclose(m_rk, m_heun, atol=1e-5)

    def test_rk45_adapts_and_matches(self):
        mesh, m0, rhs = self._setup(alpha=0.02)
        rk45 = RK45Integrator(rhs, tolerance=1e-8, dt_max=1e-12)
        m, t, dt = m0.copy(), 0.0, 1e-14
        t_end = 5e-12
        while t < t_end:
            m, taken, dt = rk45.step(t, m, min(dt, t_end - t))
            t += taken
        rk4 = RK4Integrator(rhs)
        m_ref = m0.copy()
        n = 5000
        for _ in range(n):
            m_ref = rk4.step(0.0, m_ref, t_end / n)
        assert np.allclose(m, m_ref, atol=1e-5)

    def test_rk45_rejects_on_rough_tolerance(self):
        mesh, m, rhs = self._setup(alpha=0.0)
        rk45 = RK45Integrator(rhs, tolerance=1e-12, dt_min=1e-16,
                              dt_max=1e-11)
        rk45.step(0.0, m, 1e-11)  # huge step -> must be rejected & shrunk
        assert rk45.rejected_steps > 0

    def test_step_validation(self):
        mesh, m, rhs = self._setup(alpha=0.0)
        with pytest.raises(ValueError):
            RK4Integrator(rhs).step(0.0, m, 0.0)
        with pytest.raises(ValueError):
            HeunIntegrator(rhs).step(0.0, m, -1e-15)
        with pytest.raises(ValueError):
            RK45Integrator(rhs, tolerance=0.0)
