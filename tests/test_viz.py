"""Visualisation tests."""

import numpy as np
import pytest

from repro.viz import amplitude_gray, diverging_rgb, snapshot_grid, write_pgm, write_ppm


class TestDivergingRgb:
    def test_output_shape_and_dtype(self):
        values = np.linspace(-1, 1, 12).reshape(3, 4)
        image = diverging_rgb(values)
        assert image.shape == (3, 4, 3)
        assert image.dtype == np.uint8

    def test_sign_to_colour_mapping(self):
        # Paper convention: blue = logic 0 (negative), red = logic 1.
        values = np.array([[-1.0, 0.0, 1.0]])
        image = diverging_rgb(values)
        blue, white, red = image[0]
        assert blue[2] > blue[0]     # negative -> blue dominant
        assert red[0] > red[2]       # positive -> red dominant
        assert np.all(white > 200)   # zero -> near white

    def test_mask_background(self):
        values = np.ones((2, 2))
        mask = np.array([[True, False], [False, True]])
        image = diverging_rgb(values, mask=mask, background=(5, 6, 7))
        assert tuple(image[0, 1]) == (5, 6, 7)
        assert tuple(image[0, 0]) != (5, 6, 7)

    def test_vmax_clipping(self):
        values = np.array([[10.0]])
        image = diverging_rgb(values, vmax=1.0)
        assert image[0, 0, 0] > 150  # fully saturated red end

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            diverging_rgb(np.zeros(5))

    def test_all_zero_field(self):
        image = diverging_rgb(np.zeros((4, 4)))
        assert np.all(image > 200)  # all white, no div-by-zero


class TestAmplitudeGray:
    def test_scaling(self):
        values = np.array([[0.0, 0.5, 1.0]])
        image = amplitude_gray(values)
        assert image[0, 0] == 0
        assert image[0, 2] == 255

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            amplitude_gray(np.array([[-1.0]]))


class TestImageWriters:
    def test_ppm_round_trip_header(self, tmp_path):
        image = np.zeros((4, 6, 3), dtype=np.uint8)
        image[0, 0] = (255, 0, 0)
        path = str(tmp_path / "img.ppm")
        write_ppm(path, image)
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_pgm(self, tmp_path):
        image = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = str(tmp_path / "img.pgm")
        write_pgm(path, image)
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(b"P5\n4 3\n255\n")

    def test_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "x.ppm"),
                      np.zeros((4, 4), dtype=np.uint8))

    def test_y_axis_flipped(self, tmp_path):
        # Row 0 of the array (bottom, y up) must be the LAST image row.
        image = np.zeros((2, 1, 3), dtype=np.uint8)
        image[0, 0] = (9, 9, 9)
        path = str(tmp_path / "flip.ppm")
        write_ppm(path, image)
        with open(path, "rb") as handle:
            payload = handle.read().split(b"255\n", 1)[1]
        assert payload[-3:] == bytes((9, 9, 9))


class TestSnapshotGrid:
    def test_tiles_eight_panels(self):
        panels = [np.full((10, 20, 3), i, dtype=np.uint8) for i in range(8)]
        sheet = snapshot_grid(panels, columns=4, gap=2)
        assert sheet.shape == (10 * 2 + 2, 20 * 4 + 3 * 2, 3)
        assert sheet[0, 0, 0] == 0
        assert sheet[12, 0, 0] == 4  # second row, first panel

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            snapshot_grid([np.zeros((2, 2, 3), dtype=np.uint8),
                           np.zeros((3, 3, 3), dtype=np.uint8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            snapshot_grid([])
