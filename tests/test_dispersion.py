"""Kalinikos-Slavin dispersion tests (the design physics of the gates)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    FECOB,
    YIG,
    DispersionRelation,
    FilmStack,
    SpinWaveGeometry,
    dipole_form_factor,
    paper_operating_point,
)
from repro.constants import GAMMA_LL, MU0


class TestFormFactor:
    def test_zero_limit(self):
        assert dipole_form_factor(np.array(0.0), 1e-9) == pytest.approx(0.0)

    def test_small_argument_series(self):
        k = np.array(1e3)  # kd = 1e-6
        exact = 1.0 - (1.0 - math.exp(-1e-6)) / 1e-6
        assert dipole_form_factor(k, 1e-9) == pytest.approx(exact, rel=1e-6)

    def test_large_argument_saturates_to_one(self):
        assert dipole_form_factor(np.array(1e13), 1e-9) == pytest.approx(
            1.0, rel=1e-3)

    def test_monotonic_in_kd(self):
        ks = np.linspace(0.0, 5e9, 200)
        f = dipole_form_factor(ks, 1e-9)
        assert np.all(np.diff(f) > 0)


class TestFilmStack:
    def test_internal_field_without_bias(self, paper_film):
        expected = FECOB.anisotropy_field - FECOB.ms
        assert paper_film.internal_field_fvsw == pytest.approx(expected)

    def test_external_field_adds(self):
        film = FilmStack(material=FECOB, thickness=1e-9,
                         external_field=50e3)
        assert film.internal_field_fvsw == pytest.approx(
            FECOB.anisotropy_field - FECOB.ms + 50e3)

    def test_rejects_zero_thickness(self):
        with pytest.raises(ValueError):
            FilmStack(material=FECOB, thickness=0.0)


class TestFvswDispersion:
    def test_gap_is_larmor_of_internal_field(self, paper_dispersion,
                                             paper_film):
        f0 = paper_dispersion.gap_frequency()
        expected = (FECOB.gamma * MU0 * paper_film.internal_field_fvsw
                    / (2.0 * math.pi))
        assert f0 == pytest.approx(expected, rel=1e-9)

    def test_monotonically_increasing(self, paper_dispersion):
        ks = np.linspace(0.0, 5e8, 400)
        fs = paper_dispersion.frequency(ks)
        assert np.all(np.diff(fs) > 0)

    @given(st.floats(min_value=1e6, max_value=5e8))
    @settings(max_examples=25, deadline=None)
    def test_wavenumber_inverts_frequency(self, k):
        disp = DispersionRelation(FilmStack(material=FECOB, thickness=1e-9))
        f = float(disp.frequency(k))
        k_back = disp.wavenumber(f)
        assert math.isclose(k_back, k, rel_tol=1e-4)

    def test_below_gap_raises(self, paper_dispersion):
        with pytest.raises(ValueError, match="below the spin-wave gap"):
            paper_dispersion.wavenumber(
                paper_dispersion.gap_frequency() * 0.5)

    def test_group_velocity_positive(self, paper_dispersion):
        ks = np.array([1e7, 5e7, 1e8, 3e8])
        vg = paper_dispersion.group_velocity(ks)
        assert np.all(vg > 0)

    def test_exchange_regime_quadratic(self, paper_dispersion):
        # At very large k, omega ~ k^2 (exchange waves): doubling k
        # should roughly quadruple (omega - gap contribution).
        k = 5e9
        w1 = float(paper_dispersion.omega(k))
        w2 = float(paper_dispersion.omega(2 * k))
        assert w2 / w1 == pytest.approx(4.0, rel=0.1)

    def test_fvsw_requires_perpendicular_film(self):
        with pytest.raises(ValueError, match="positive internal"):
            DispersionRelation(FilmStack(material=YIG, thickness=20e-9))

    def test_yig_fvsw_with_bias(self):
        # YIG becomes FVSW-capable with a strong out-of-plane field.
        film = FilmStack(material=YIG, thickness=20e-9,
                         external_field=300e3)
        disp = DispersionRelation(film)
        assert disp.gap_frequency() > 0
        assert float(disp.frequency(1e7)) > disp.gap_frequency()


class TestOtherGeometries:
    def test_backward_volume_exists(self):
        film = FilmStack(material=YIG, thickness=20e-9,
                         external_field=50e3)
        disp = DispersionRelation(film, SpinWaveGeometry.BACKWARD_VOLUME)
        assert float(disp.frequency(1e7)) > 0

    def test_surface_wave_above_bvsw(self):
        film = FilmStack(material=YIG, thickness=20e-9,
                         external_field=50e3)
        de = DispersionRelation(film, SpinWaveGeometry.SURFACE)
        bv = DispersionRelation(film, SpinWaveGeometry.BACKWARD_VOLUME)
        k = 1e7
        assert float(de.frequency(k)) > float(bv.frequency(k))


class TestLifetimeAndAttenuation:
    def test_lifetime_scales_inverse_damping(self, paper_film):
        k = 1e8
        tau_base = float(DispersionRelation(paper_film).lifetime(k))
        lossy = FilmStack(material=FECOB.with_damping(0.008),
                          thickness=1e-9)
        tau_lossy = float(DispersionRelation(lossy).lifetime(k))
        assert tau_base / tau_lossy == pytest.approx(2.0, rel=1e-6)

    def test_attenuation_length_micron_scale(self, paper_dispersion):
        # At the paper's operating point the decay length is a few um --
        # large against the ~2 um gate, which is why the paper neglects
        # propagation loss (assumption (iv)).
        k = 2.0 * math.pi / 55e-9
        l_att = float(paper_dispersion.attenuation_length(k))
        assert 0.5e-6 < l_att < 20e-6


class TestPaperOperatingPoint:
    def test_reports_inconsistency(self):
        op = paper_operating_point()
        assert op["wavelength"] == pytest.approx(55e-9)
        assert op["paper_frequency"] == pytest.approx(10e9)
        # The dispersion-implied frequency differs from the quoted
        # 10 GHz (documented inconsistency; see EXPERIMENTS.md).
        assert op["frequency"] != pytest.approx(10e9, rel=0.2)

    def test_group_velocity_order_km_s(self):
        op = paper_operating_point()
        assert 100 < op["group_velocity"] < 20e3
