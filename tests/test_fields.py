"""Effective-field term tests: exchange, anisotropy, Zeeman, thermal."""

import math

import numpy as np
import pytest

from repro.constants import KB, MU0
from repro.micromag import (
    Envelope,
    ExchangeField,
    ExcitationSource,
    Mesh,
    ThermalField,
    UniaxialAnisotropyField,
    ZeemanField,
    rectangle,
)
from repro.physics import FECOB


class TestExchange:
    def test_uniform_state_zero_field(self, small_mesh):
        ex = ExchangeField(small_mesh, FECOB.aex, FECOB.ms)
        m = small_mesh.uniform_vector((0, 0, 1))
        h = ex.field(m)
        assert np.allclose(h, 0.0, atol=1e-6)

    def test_uniform_state_zero_energy(self, small_mesh):
        ex = ExchangeField(small_mesh, FECOB.aex, FECOB.ms)
        m = small_mesh.uniform_vector((0, 0, 1))
        assert ex.energy(m) == pytest.approx(0.0, abs=1e-40)

    def test_sinusoidal_texture_matches_continuum(self):
        # m = (sin(qx), 0, cos(qx)) has laplacian -q^2 m exactly; the
        # discrete operator should approach (2A/mu0 Ms) * (-q^2) m.
        n = 64
        dx = 2e-9
        mesh = Mesh(cell_size=(dx, dx, 1e-9), shape=(n, 4, 1))
        q = 2.0 * math.pi / (n * dx / 4)  # 4 periods? no: lambda = n*dx/4
        x = mesh.axis_coordinates(0)
        m = mesh.zeros_vector()
        m[0] = np.sin(q * x)[None, None, :]
        m[2] = np.cos(q * x)[None, None, :]
        ex = ExchangeField(mesh, FECOB.aex, FECOB.ms)
        h = ex.field(m)
        prefactor = 2.0 * FECOB.aex / (MU0 * FECOB.ms)
        # The discrete Laplacian's plane-wave eigenvalue is
        # (2 - 2 cos(q dx)) / dx^2; it must match exactly, and agree
        # with the continuum q^2 to a few percent at this resolution.
        q_discrete2 = (2.0 - 2.0 * math.cos(q * dx)) / dx ** 2
        interior = slice(4, n - 4)
        expected = -prefactor * q_discrete2 * m[0, 0, 1, interior]
        assert np.allclose(h[0, 0, 1, interior], expected, rtol=1e-9)
        assert q_discrete2 == pytest.approx(q * q, rel=0.05)

    def test_antiparallel_pair_energy_positive(self):
        mesh = Mesh(cell_size=(2e-9, 2e-9, 2e-9), shape=(2, 1, 1))
        ex = ExchangeField(mesh, FECOB.aex, FECOB.ms)
        m = mesh.zeros_vector()
        m[2, 0, 0, 0] = 1.0
        m[2, 0, 0, 1] = -1.0
        assert ex.energy(m) > 0.0

    def test_mask_decouples_regions(self):
        mesh = Mesh(cell_size=(2e-9, 2e-9, 2e-9), shape=(2, 1, 1))
        mask = np.ones(mesh.scalar_shape, dtype=bool)
        ex_coupled = ExchangeField(mesh, FECOB.aex, FECOB.ms, mask)
        m = mesh.zeros_vector()
        m[2, 0, 0, 0] = 1.0
        m[2, 0, 0, 1] = -1.0
        h_coupled = ex_coupled.field(m)
        assert np.abs(h_coupled).max() > 0
        # Now cut cell 1 out of the geometry: no neighbour, no field.
        mask2 = mask.copy()
        mask2[0, 0, 1] = False
        ex_cut = ExchangeField(mesh, FECOB.aex, FECOB.ms, mask2)
        h_cut = ex_cut.field(m)
        assert np.allclose(h_cut[:, 0, 0, 0], 0.0)

    def test_validation(self, small_mesh):
        with pytest.raises(ValueError):
            ExchangeField(small_mesh, -1.0, FECOB.ms)
        with pytest.raises(ValueError):
            ExchangeField(small_mesh, FECOB.aex, 0.0)
        with pytest.raises(ValueError):
            ExchangeField(small_mesh, FECOB.aex, FECOB.ms,
                          mask=np.ones((2, 2, 2), dtype=bool))


class TestAnisotropy:
    def test_field_along_easy_axis(self, small_mesh):
        ani = UniaxialAnisotropyField(small_mesh, FECOB.ku, FECOB.ms)
        m = small_mesh.uniform_vector((0, 0, 1))
        h = ani.field(m)
        expected = 2.0 * FECOB.ku / (MU0 * FECOB.ms)
        assert np.allclose(h[2], expected)
        assert np.allclose(h[0], 0.0)

    def test_perpendicular_m_gives_zero_field(self, small_mesh):
        ani = UniaxialAnisotropyField(small_mesh, FECOB.ku, FECOB.ms)
        m = small_mesh.uniform_vector((1, 0, 0))
        assert np.allclose(ani.field(m), 0.0)

    def test_energy_zero_on_axis_max_perpendicular(self, small_mesh):
        ani = UniaxialAnisotropyField(small_mesh, FECOB.ku, FECOB.ms)
        on_axis = small_mesh.uniform_vector((0, 0, 1))
        perp = small_mesh.uniform_vector((1, 0, 0))
        assert ani.energy(on_axis) == pytest.approx(0.0, abs=1e-40)
        expected = FECOB.ku * small_mesh.n_cells * small_mesh.cell_volume
        assert ani.energy(perp) == pytest.approx(expected, rel=1e-12)

    def test_tilted_axis(self, small_mesh):
        axis = (1.0, 0.0, 1.0)
        ani = UniaxialAnisotropyField(small_mesh, FECOB.ku, FECOB.ms,
                                      axis=axis)
        norm = math.sqrt(2.0)
        m = small_mesh.uniform_vector((1.0 / norm, 0.0, 1.0 / norm))
        assert ani.energy(m) == pytest.approx(0.0, abs=1e-30)

    def test_validation(self, small_mesh):
        with pytest.raises(ValueError):
            UniaxialAnisotropyField(small_mesh, FECOB.ku, 0.0)
        with pytest.raises(ValueError):
            UniaxialAnisotropyField(small_mesh, FECOB.ku, FECOB.ms,
                                    axis=(0, 0, 0))


class TestZeeman:
    def test_static_field_everywhere(self, small_mesh):
        zee = ZeemanField(small_mesh, static_field=(0, 0, 1e5))
        h = zee.field()
        assert np.allclose(h[2], 1e5)

    def test_energy_prefers_alignment(self, small_mesh):
        zee = ZeemanField(small_mesh, static_field=(0, 0, 1e5))
        aligned = small_mesh.uniform_vector((0, 0, 1))
        anti = small_mesh.uniform_vector((0, 0, -1))
        assert zee.energy(aligned, ms=FECOB.ms) < zee.energy(
            anti, ms=FECOB.ms)

    def test_source_contributes_inside_region_only(self, small_mesh):
        zee = ZeemanField(small_mesh)
        source = ExcitationSource(
            region=rectangle(0, 0, 10e-9, 40e-9),
            amplitude=5e3, frequency=10e9)
        zee.add_source(source)
        h = zee.field(t=0.0)
        assert h[0, 0, 0, 0] == pytest.approx(5e3)
        assert h[0, 0, 0, 7] == pytest.approx(0.0)


class TestThermal:
    def test_zero_temperature_silent(self, small_mesh, rng):
        th = ThermalField(small_mesh, FECOB.ms, FECOB.alpha, FECOB.gamma,
                          temperature=0.0, rng=rng)
        th.refresh(dt=1e-13, step=0)
        assert np.allclose(th.field(), 0.0)

    def test_variance_matches_brown_formula(self, small_mesh, rng):
        temperature = 300.0
        dt = 1e-13
        th = ThermalField(small_mesh, FECOB.ms, FECOB.alpha, FECOB.gamma,
                          temperature, rng=rng)
        sigma = th.standard_deviation(dt)
        expected = math.sqrt(
            2.0 * FECOB.alpha * KB * temperature
            / (MU0 * FECOB.ms * FECOB.gamma * small_mesh.cell_volume * dt))
        assert sigma == pytest.approx(expected, rel=1e-12)
        samples = []
        for step in range(200):
            th.refresh(dt, step)
            samples.append(th.field().ravel())
        measured = np.std(np.concatenate(samples))
        assert measured == pytest.approx(sigma, rel=0.05)

    def test_same_noise_within_step(self, small_mesh, rng):
        th = ThermalField(small_mesh, FECOB.ms, FECOB.alpha, FECOB.gamma,
                          300.0, rng=rng)
        th.refresh(1e-13, step=0)
        a = th.field().copy()
        b = th.field().copy()
        assert np.array_equal(a, b)
        th.refresh(1e-13, step=1)
        c = th.field()
        assert not np.array_equal(a, c)

    def test_scaling_with_dt(self, small_mesh, rng):
        th = ThermalField(small_mesh, FECOB.ms, FECOB.alpha, FECOB.gamma,
                          300.0, rng=rng)
        # sigma ~ 1/sqrt(dt): halving dt raises sigma by sqrt(2).
        ratio = th.standard_deviation(5e-14) / th.standard_deviation(1e-13)
        assert ratio == pytest.approx(math.sqrt(2.0), rel=1e-9)

    def test_validation(self, small_mesh, rng):
        with pytest.raises(ValueError):
            ThermalField(small_mesh, FECOB.ms, FECOB.alpha, FECOB.gamma,
                         temperature=-1.0, rng=rng)
        with pytest.raises(ValueError):
            ThermalField(small_mesh, FECOB.ms, 0.0, FECOB.gamma,
                         temperature=300.0, rng=rng)


class TestEnvelope:
    def test_cw_default(self):
        env = Envelope()
        assert env(0.0) == 1.0
        assert env(1.0) == 1.0

    def test_pulse_window(self):
        env = Envelope(start=1e-9, duration=100e-12)
        assert env(0.5e-9) == 0.0
        assert env(1.05e-9) == 1.0
        assert env(1.2e-9) == 0.0

    def test_cosine_ramp(self):
        env = Envelope(start=0.0, duration=100e-12, rise=20e-12)
        assert env(0.0) == pytest.approx(0.0)
        assert env(10e-12) == pytest.approx(0.5)
        assert env(20e-12) == pytest.approx(1.0)
        assert env(90e-12) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Envelope(duration=0.0)
        with pytest.raises(ValueError):
            Envelope(duration=10e-12, rise=6e-12)
        with pytest.raises(ValueError):
            Envelope(rise=-1.0)
