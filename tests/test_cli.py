"""CLI tests (``python -m repro``)."""

import json

import pytest

from repro import __version__, obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _clean_observer():
    """--trace/--log-level toggle process-global observer state; never
    leak it across tests."""
    yield
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    import logging

    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestTruthTable:
    @pytest.mark.parametrize("gate", ["maj3", "nmaj3", "xor", "xnor",
                                      "and", "or", "nand", "nor", "maj5"])
    def test_gate_prints_table(self, gate, capsys):
        assert main(["truth-table", gate]) == 0
        out = capsys.readouterr().out
        assert "O1" in out and "O2" in out

    def test_unknown_gate(self, capsys):
        assert main(["truth-table", "flux"]) == 2
        assert "unknown gate" in capsys.readouterr().err

    def test_maj3_values_correct(self, capsys):
        main(["truth-table", "maj3"])
        out = capsys.readouterr().out
        # (1,1,0) row must decode to 1 at both outputs.
        for line in out.splitlines():
            if line.startswith("1  | 1  | 0"):
                assert line.strip().endswith("1  | 1")
                break
        else:
            pytest.fail("pattern row not found")


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "0.083" in out and "0.164" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "This work" in out
        assert "10.3" in out


class TestDesign:
    def test_default_design_point(self, capsys):
        assert main(["design"]) == 0
        out = capsys.readouterr().out
        assert "d1 = 330 nm" in out
        assert "d2 = 880 nm" in out

    def test_rescaled(self, capsys):
        assert main(["design", "--wavelength-nm", "110"]) == 0
        out = capsys.readouterr().out
        assert "d1 = 660 nm" in out


class TestAdder:
    def test_adder_comparison(self, capsys):
        assert main(["adder", "4"]) == 0
        out = capsys.readouterr().out
        assert "SW (this work)" in out
        assert "7nm CMOS" in out


class TestNoSubcommand:
    def test_usage_and_exit_code_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "subcommand is required" in err

    def test_global_flags_alone_still_exit_2(self, capsys):
        assert main(["--workers", "2", "--no-cache"]) == 2
        assert "usage:" in capsys.readouterr().err


class TestUnknownSubcommand:
    def test_usage_and_exit_code_2(self, capsys):
        # argparse raises SystemExit(2) for an invalid choice; main()
        # must convert it to a return code instead of letting it
        # propagate out of the entry point.
        assert main(["decompile", "maj3"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_help_still_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "usage:" in capsys.readouterr().out


class TestSweep:
    def test_sweep_maj3_network_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["--workers", "1", "sweep", "maj3", "--tier", "network",
                "--cache-dir", cache_dir,
                "--json", str(tmp_path / "report.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "MAJ3 FO2 truth-table sweep" in out
        assert "run telemetry" in out
        assert "8 jobs: 0 cached" in out
        # Second invocation: the on-disk cache serves every pattern.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "8 jobs: 8 cached (100 % hits)" in out
        import json
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["summary"]["hit_rate"] == 1.0

    def test_sweep_no_cache(self, capsys):
        assert main(["--no-cache", "sweep", "xor",
                     "--tier", "network"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs: 0 cached" in out

    def test_sweep_rejects_unknown_gate(self, capsys):
        # Usage errors no longer escape as SystemExit: main() returns
        # the conventional misuse code instead.
        assert main(["sweep", "nand"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_sweep_prints_cache_line(self, tmp_path, capsys):
        argv = ["--workers", "1", "sweep", "xor", "--tier", "network",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits / 4 misses" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 4 hits / 0 misses (100 % hit rate), 0 writes" in out

    def test_sweep_no_cache_prints_disabled(self, capsys):
        assert main(["--no-cache", "sweep", "xor",
                     "--tier", "network"]) == 0
        assert "cache: disabled" in capsys.readouterr().out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestLogLevel:
    def test_log_level_enables_repro_logging(self, tmp_path, capsys):
        argv = ["--log-level", "info", "--workers", "1",
                "sweep", "xor", "--tier", "network",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "repro.runtime.executor" in err

    def test_unknown_level_exits_2(self, capsys):
        assert main(["--log-level", "loud", "truth-table", "maj3"]) == 2
        assert "unknown log level" in capsys.readouterr().err


class TestTraceAndProfile:
    def test_profile_network_tier(self, capsys):
        assert main(["profile", "maj3", "--tier", "network"]) == 0
        out = capsys.readouterr().out
        assert "MAJ3 111 @ network tier" in out
        assert "gate_case" in out

    def test_profile_rejects_bad_bits(self, capsys):
        assert main(["profile", "maj3", "--bits", "01"]) == 2
        assert "must be 3 binary digits" in capsys.readouterr().err

    def test_trace_jsonl_from_sweep(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["--trace", str(trace), "--no-cache", "--workers", "1",
                     "sweep", "xor", "--tier", "network"]) == 0
        err = capsys.readouterr().err
        assert "trace written to" in err and "jsonl format" in err
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert {"sweep", "executor.run", "gate_case"} <= names

    def test_trace_profile_fdtd_nested_spans(self, tmp_path, capsys):
        # The ISSUE acceptance criterion: a Chrome trace with nested
        # fdtd.step spans under the gate-case span (slow: real FDTD run).
        trace = tmp_path / "trace.json"
        assert main(["--trace", str(trace),
                     "profile", "xor", "--tier", "fdtd"]) == 0
        out = capsys.readouterr().out
        assert "fdtd.step" in out  # top-spans table
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert all(ev["ph"] == "X" for ev in events)
        by_id = {ev["args"]["span_id"]: ev for ev in events}
        step = next(ev for ev in events if ev["name"] == "fdtd.step")
        chain = []
        while step is not None:
            chain.append(step["name"])
            step = by_id.get(step["args"].get("parent_id"))
        assert chain[0] == "fdtd.step"
        assert "gate_case" in chain and chain[-1] == "profile"


class TestCacheCommand:
    @staticmethod
    def _fill(root, n=2):
        from repro.runtime import DiskCache

        cache = DiskCache(root=root)
        for i in range(n):
            cache.put(format(i, "02x") * 20, {"payload": "x" * 128, "i": i})
        return cache

    def test_stats_reports_entries(self, tmp_path, capsys):
        self._fill(str(tmp_path))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "result cache at" in out
        assert "total" in out and "entries" in out

    def test_stats_on_missing_root(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "nowhere")]) == 0
        assert "total" in capsys.readouterr().out

    def test_prune_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_empties_cache(self, tmp_path, capsys):
        cache = self._fill(str(tmp_path))
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 of 2 entries" in out
        assert cache.usage().entries == 0

    def test_stats_json_includes_quarantine(self, tmp_path, capsys):
        cache = self._fill(str(tmp_path))
        # Tear one entry so the JSON report has a quarantine to count.
        json_path, _npz = cache._paths("00" * 20)
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        cache.get("00" * 20)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["quarantined"] == 1
        assert payload["total_bytes"] > 0
        assert payload["root"] == str(tmp_path)
        assert "by_salt" in payload

    def test_stats_json_on_empty_root(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "nowhere"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0
        assert payload["quarantined"] == 0

    def test_json_rejected_for_prune(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0", "--json"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_parse_size_suffixes(self):
        import argparse

        from repro.cli import _parse_size

        assert _parse_size("512") == 512
        assert _parse_size("10K") == 10 * 1024
        assert _parse_size("64M") == 64 * (1 << 20)
        assert _parse_size("2G") == 2 * (1 << 30)
        assert _parse_size("1.5k") == 1536
        assert _parse_size("10KB") == 10 * 1024
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size("lots")


class TestCharacterizeCommand:
    AXIS_FLAGS = ["--axis", "phase_noise=0,0.2",
                  "--axis", "frequency_detune=-0.02,0,0.02",
                  "--axis", "geometry_jitter=0",
                  "--axis", "temperature=0"]

    def test_characterize_fits_and_saves_model(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        summary = tmp_path / "fit.json"
        code = main(["characterize", "xor", "--store", store,
                     "--n-trials", "2", "--no-cache",
                     "--json", str(summary), *self.AXIS_FLAGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "6/6" in out or "6 of 6" in out or "grid" in out
        payload = json.loads(summary.read_text())
        assert payload["gate"] == "xor"
        assert payload["grid_size"] == 6
        assert payload["n_records"] == 6
        assert payload["kind"] == "multilinear"
        assert payload["max_residual"] <= payload["residual_threshold"]
        import os

        assert os.path.exists(payload["model_path"])
        from repro.surrogate import load_model

        assert load_model(payload["model_path"]).gate == "xor"

    def test_characterize_is_idempotent(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = ["characterize", "xor", "--store", store,
                "--n-trials", "2", "--no-cache", *self.AXIS_FLAGS]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # all corners already on disk

    def test_bad_axis_spec_exits_2(self, tmp_path, capsys):
        assert main(["characterize", "xor", "--store", str(tmp_path),
                     "--axis", "voltage=1,2"]) == 2
        assert "axis" in capsys.readouterr().err

    def test_unknown_gate_exits_2(self, tmp_path, capsys):
        assert main(["characterize", "maj7",
                     "--store", str(tmp_path)]) == 2


class TestSweepSurrogateTier:
    def test_sweep_answers_from_fitted_model(self, tmp_path, monkeypatch,
                                             capsys):
        from repro.surrogate import (
            AxisSpec,
            CharacterizationStore,
            characterize,
            clear_registry,
            fit_surrogate,
        )

        store = CharacterizationStore(str(tmp_path))
        dataset = store.dataset("xor", axes=(
            AxisSpec("phase_noise", (0.0, 0.2)),
            AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
            AxisSpec("geometry_jitter", (0.0,)),
            AxisSpec("temperature", (0.0,))), n_trials=2)
        fit_surrogate(characterize(dataset).values()).save(
            store.model_path("xor"))
        clear_registry()
        monkeypatch.setenv("REPRO_SURROGATE_DIR", store.root)
        try:
            assert main(["sweep", "xor", "--tier", "surrogate",
                         "--no-cache"]) == 0
        finally:
            clear_registry()
        out = capsys.readouterr().out
        assert "all cases correct" in out or "correct" in out


class TestServeParserWiring:
    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 8077
        assert args.max_queue == 64
        assert args.batch_window_ms == 2.0
        assert args.batch_max == 16
        assert args.rate is None
        assert args.drain_timeout == 30.0
        assert callable(args.func)

    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--max-queue", "8", "--rate", "250", "--burst", "50",
             "--batch-window-ms", "5", "--batch-max", "32",
             "--access-log", "a.jsonl", "--drain-timeout", "5"])
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.max_queue == 8
        assert args.rate == 250.0 and args.burst == 50.0
        assert args.batch_window_ms == 5.0 and args.batch_max == 32
        assert args.access_log == "a.jsonl"
        assert args.drain_timeout == 5.0
