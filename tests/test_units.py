"""Unit-helper tests, including hypothesis round trips."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConverters:
    def test_nm(self):
        assert units.nm(55) == pytest.approx(55e-9)

    def test_um(self):
        assert units.um(2.5) == pytest.approx(2.5e-6)

    def test_ns_ps_fs(self):
        assert units.ns(0.4) == pytest.approx(0.4e-9)
        assert units.ps(100) == pytest.approx(1e-10)
        assert units.fs(20) == pytest.approx(2e-14)

    def test_ghz_mhz(self):
        assert units.ghz(10) == pytest.approx(1e10)
        assert units.mhz(250) == pytest.approx(2.5e8)

    def test_energy_power(self):
        assert units.aj(6.9) == pytest.approx(6.9e-18)
        assert units.nw(34.4) == pytest.approx(34.4e-9)

    def test_magnetics(self):
        assert units.ka_per_m(1100) == pytest.approx(1.1e6)
        assert units.mj_per_m3(0.832) == pytest.approx(0.832e6)
        assert units.pj_per_m(18.5) == pytest.approx(18.5e-12)
        assert units.rad_per_um(50) == pytest.approx(5e7)


class TestEngineering:
    def test_split_paper_wavelength(self):
        mantissa, prefix = units.to_engineering(55e-9)
        assert prefix == "n"
        assert mantissa == pytest.approx(55.0)

    def test_zero(self):
        assert units.to_engineering(0.0) == (0.0, "")

    def test_format_quantity(self):
        assert units.format_quantity(55e-9, "m") == "55 nm"
        assert units.format_quantity(10e9, "Hz") == "10 GHz"

    @given(st.floats(min_value=1e-20, max_value=1e10,
                     allow_nan=False, allow_infinity=False))
    def test_round_trip(self, value):
        mantissa, prefix = units.to_engineering(value)
        rebuilt = mantissa * units.SI_PREFIXES[prefix]
        assert math.isclose(rebuilt, value, rel_tol=1e-9)


class TestParseQuantity:
    def test_with_space(self):
        assert units.parse_quantity("55 nm") == pytest.approx(55e-9)

    def test_without_space(self):
        assert units.parse_quantity("10GHz") == pytest.approx(10e9)

    def test_plain_number(self):
        assert units.parse_quantity("42") == pytest.approx(42.0)

    def test_exponent_notation(self):
        assert units.parse_quantity("1e-9 m") == pytest.approx(1e-9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.parse_quantity("nm")

    def test_micro_symbol(self):
        assert units.parse_quantity("2 µm") == pytest.approx(2e-6)
