"""Tests for the turnkey micromagnetic experiments (sinc source; the
full dispersion extraction runs in the validation bench)."""

import math

import numpy as np
import pytest

from repro.micromag import Mesh, SincSource, rectangle
from repro.micromag.experiments import extract_dispersion
from repro.physics import FECOB


class TestSincSource:
    def _source(self, f_max=20e9, t0=0.5e-9):
        return SincSource(region=rectangle(0, 0, 10e-9, 10e-9),
                          amplitude=1e3, f_max=f_max, t0=t0)

    def test_peak_at_t0(self):
        src = self._source()
        assert src.waveform(0.5e-9) == pytest.approx(1e3)

    def test_zeros_at_half_period_multiples(self):
        src = self._source(f_max=20e9, t0=0.5e-9)
        # sinc zeros at t0 + n / (2 f_max).
        for n in (1, 2, 3):
            t = 0.5e-9 + n / (2 * 20e9)
            assert src.waveform(t) == pytest.approx(0.0, abs=1e-9)

    def test_spectrum_flat_below_cutoff(self):
        src = self._source(f_max=20e9, t0=2e-9)
        dt = 5e-12
        t = np.arange(int(4e-9 / dt)) * dt
        signal = np.array([src.waveform(ti) for ti in t])
        spectrum = np.abs(np.fft.rfft(signal))
        freqs = np.fft.rfftfreq(len(signal), d=dt)
        in_band = spectrum[(freqs > 1e9) & (freqs < 15e9)]
        out_band = spectrum[(freqs > 25e9) & (freqs < 40e9)]
        assert in_band.min() > 5 * out_band.max()

    def test_field_localised(self):
        src = self._source()
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(8, 8, 1))
        field = src.field(mesh, 0.5e-9)
        assert abs(field[0, 0, 0, 0]) > 0
        assert field[0, 0, 7, 7] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SincSource(region=rectangle(0, 0, 1e-9, 1e-9),
                       amplitude=1.0, f_max=0.0)


class TestExtractDispersionSmoke:
    """A heavily scaled-down extraction: just the plumbing, the physics
    validation runs in benchmarks/bench_validation_dispersion.py."""

    def test_small_run_produces_monotone_ridge(self):
        experiment = extract_dispersion(
            FECOB, length=0.8e-6, duration=1.2e-9, f_max=30e9,
            dt=4e-14, sample_every=8, k_band=(5e7, 1.5e8))
        assert len(experiment.k_values) >= 4
        assert np.all(np.diff(experiment.f_measured) >= 0)
        # Loose agreement at this resolution.
        assert experiment.mean_relative_error < 0.3
