"""Circuit-level figure-of-merit tests (the ref. [42] comparison style)."""

import pytest

from repro.circuits import full_adder_netlist, ripple_carry_adder_netlist
from repro.evaluation.circuit_level import (
    CircuitFigures,
    adder_comparison,
    cmos_adder_figures,
    format_comparison,
    spin_wave_circuit_figures,
)


class TestSpinWaveFigures:
    def test_full_adder_figures(self):
        fig = spin_wave_circuit_figures(full_adder_netlist())
        # 2 XOR x 4 cells + 1 MAJ3 x 5 cells = 13 transducers.
        assert fig.device_count == 13
        assert fig.energy == pytest.approx(7 * 3.44e-18, rel=1e-6)
        assert fig.delay == pytest.approx(0.8e-9)
        assert fig.area > 0

    def test_energy_scales_with_width(self):
        e4 = spin_wave_circuit_figures(ripple_carry_adder_netlist(4)).energy
        e8 = spin_wave_circuit_figures(ripple_carry_adder_netlist(8)).energy
        assert e8 == pytest.approx(2 * e4, rel=1e-6)

    def test_delay_scales_with_width(self):
        d4 = spin_wave_circuit_figures(ripple_carry_adder_netlist(4)).delay
        d8 = spin_wave_circuit_figures(ripple_carry_adder_netlist(8)).delay
        assert d8 > d4


class TestCmosFigures:
    def test_transistor_count(self):
        fig = cmos_adder_figures(4, "16nm")
        # 4 x (16 + 2 x 8) = 128 transistors.
        assert fig.device_count == 128

    def test_energy_from_table_iii(self):
        fig = cmos_adder_figures(1, "7nm")
        assert fig.energy == pytest.approx(16.4e-18 + 2 * 5.4e-18)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            cmos_adder_figures(0, "16nm")


class TestComparison:
    def test_all_three_technologies(self):
        figures = adder_comparison(4)
        assert set(figures) == {"SW (this work)", "16nm CMOS", "7nm CMOS"}

    def test_sw_beats_16nm_on_energy(self):
        figures = adder_comparison(8)
        assert figures["SW (this work)"].energy \
            < figures["16nm CMOS"].energy

    def test_cmos_beats_sw_on_delay(self):
        figures = adder_comparison(8)
        assert figures["7nm CMOS"].delay < figures["SW (this work)"].delay

    def test_sw_wins_area_energy_product_vs_16nm(self):
        # The circuit-level story of ref [42]: energy/area products
        # favour SW against mature CMOS despite the delay deficit.
        figures = adder_comparison(8)
        sw = figures["SW (this work)"].area_delay_power_product
        c16 = figures["16nm CMOS"].area_delay_power_product
        assert c16 / sw > 10

    def test_format_contains_rows(self):
        text = format_comparison(adder_comparison(2))
        assert "SW (this work)" in text
        assert "EDP" in text

    def test_derived_products(self):
        fig = CircuitFigures(name="x", technology="SW", device_count=1,
                             energy=2.0, delay=3.0, area=5.0)
        assert fig.energy_delay_product == pytest.approx(6.0)
        assert fig.area_delay_power_product == pytest.approx(10.0)
