"""Circuit-layer tests: netlists, components, simulator, synthesis."""

import math
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CascadeSimulator,
    CircuitSimulator,
    DirectionalCoupler,
    Netlist,
    Repeater,
    fanout_chain,
    full_adder_netlist,
    majority_tree_netlist,
    parity_chain_netlist,
    ripple_carry_adder_netlist,
)
from repro.core.logic import full_adder, majority, xor
from repro.errors import (
    CombinationalLoopError,
    DanglingNetError,
    DriveConflictError,
    FanOutExceededError,
    NetlistError,
    ReproError,
)
from repro.physics import Wave

F = 10e9


class TestNetlist:
    def test_duplicate_gate_rejected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g", "REPEATER", ["a"], ["b"])
        with pytest.raises(ValueError, match="duplicate gate"):
            net.add_gate("g", "REPEATER", ["b"], ["c"])

    def test_unknown_gate_type(self):
        net = Netlist()
        with pytest.raises(ValueError, match="unknown gate type"):
            net.add_gate("g", "FLUX_CAPACITOR", ["a"], ["b"])

    def test_port_count_enforced(self):
        net = Netlist()
        with pytest.raises(ValueError, match="takes 3 inputs"):
            net.add_gate("g", "MAJ3", ["a", "b"], ["o", None])

    def test_multiple_drivers_rejected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g1", "REPEATER", ["a"], ["x"])
        with pytest.raises(ValueError, match="driven by multiple"):
            net.add_gate("g2", "REPEATER", ["a"], ["x"])

    def test_dangling_input_detected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g", "XOR", ["a", "ghost"], ["o", None])
        with pytest.raises(ValueError, match="no driver"):
            net.validate()

    def test_fanout_budget_enforced(self):
        net = Netlist()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g1", "XOR", ["a", "b"], ["x", None])
        net.add_gate("g2", "REPEATER", ["x"], ["y1"])
        net.add_gate("g3", "REPEATER", ["x"], ["y2"])  # second consumer
        with pytest.raises(ValueError, match="SPLITTER"):
            net.validate()

    def test_loop_detected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g1", "XOR", ["a", "y"], ["x", None])
        net.add_gate("g2", "REPEATER", ["x"], ["y"])
        with pytest.raises(ValueError, match="loop"):
            net.topological_order()

    def test_count_by_type(self):
        net = full_adder_netlist()
        counts = net.count_by_type()
        assert counts["XOR"] == 2
        assert counts["MAJ3"] == 1
        assert counts["SPLITTER2"] == 3


class TestComponents:
    def test_coupler_power_conserved(self):
        coupler = DirectionalCoupler(n_arms=2)
        arms = coupler.split(Wave(1.0, 0.3, F))
        total_power = sum(a.amplitude ** 2 for a in arms)
        assert total_power == pytest.approx(1.0)
        for arm in arms:
            assert arm.phase == pytest.approx(0.3)

    def test_coupler_excess_loss(self):
        coupler = DirectionalCoupler(n_arms=2, excess_loss=0.9)
        arms = coupler.split(Wave(1.0, 0.0, F))
        assert arms[0].amplitude == pytest.approx(0.9 / math.sqrt(2))

    def test_coupler_validation(self):
        with pytest.raises(ValueError):
            DirectionalCoupler(n_arms=1)
        with pytest.raises(ValueError):
            DirectionalCoupler(excess_loss=0.0)

    def test_repeater_restores_amplitude(self):
        repeater = Repeater()
        weak = Wave(0.3, math.pi, F)
        fresh = repeater.regenerate(weak)
        assert fresh.amplitude == pytest.approx(1.0)
        assert fresh.phase == pytest.approx(math.pi)

    def test_repeater_rejects_lost_signal(self):
        repeater = Repeater(minimum_input=0.1)
        with pytest.raises(ValueError, match="below"):
            repeater.regenerate(Wave(0.05, 0.0, F))

    def test_repeater_cost(self):
        repeater = Repeater()
        assert repeater.energy == pytest.approx(3.44e-18)
        assert repeater.delay == pytest.approx(0.42e-9)

    def test_fanout_chain_plan(self):
        assert fanout_chain(2) == (1, 2)
        assert fanout_chain(4) == (3, 4)
        assert fanout_chain(8) == (7, 8)
        assert fanout_chain(3, coupler_arms=3) == (1, 3)

    def test_fanout_chain_validation(self):
        with pytest.raises(ValueError):
            fanout_chain(1)


class TestFullAdder:
    def test_exhaustive(self):
        sim = CircuitSimulator(full_adder_netlist())
        for a, b, c in product((0, 1), repeat=3):
            report = sim.run({"a": a, "b": b, "cin": c})
            s, carry = full_adder(a, b, c)
            assert report.outputs == {"sum": s, "carry": carry}

    def test_energy_accounting(self):
        # 2 XOR gates (2 cells each) + 1 MAJ3 (3 cells) = 7 excitations
        # at 3.44 aJ each; splitters are passive.
        sim = CircuitSimulator(full_adder_netlist())
        report = sim.run({"a": 1, "b": 0, "cin": 1})
        assert report.energy == pytest.approx(7 * 3.44e-18, rel=1e-6)

    def test_critical_path(self):
        # sum goes through two cascaded XORs -> 2 stages.
        sim = CircuitSimulator(full_adder_netlist())
        report = sim.run({"a": 1, "b": 1, "cin": 0})
        assert report.stage_count == 2
        assert report.delay == pytest.approx(2 * 0.4e-9)

    def test_network_model_agrees(self):
        boolean = CircuitSimulator(full_adder_netlist(), model="boolean")
        physical = CircuitSimulator(full_adder_netlist(), model="network")
        for a, b, c in product((0, 1), repeat=3):
            inputs = {"a": a, "b": b, "cin": c}
            assert boolean.run(inputs).outputs \
                == physical.run(inputs).outputs


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive(self, width):
        sim = CircuitSimulator(ripple_carry_adder_netlist(width))
        for a in range(2 ** width):
            for b in range(2 ** width):
                for cin in (0, 1):
                    inputs = {f"a{i}": (a >> i) & 1 for i in range(width)}
                    inputs.update(
                        {f"b{i}": (b >> i) & 1 for i in range(width)})
                    inputs["cin"] = cin
                    out = sim.run(inputs).outputs
                    total = sum(out[f"s{i}"] << i for i in range(width)) \
                        + (out["cout"] << width)
                    assert total == a + b + cin

    def test_delay_grows_with_width(self):
        short = CircuitSimulator(ripple_carry_adder_netlist(2))
        long = CircuitSimulator(ripple_carry_adder_netlist(6))
        inputs2 = {f"{p}{i}": 1 for p in "ab" for i in range(2)}
        inputs6 = {f"{p}{i}": 1 for p in "ab" for i in range(6)}
        inputs2["cin"] = 1
        inputs6["cin"] = 1
        assert long.run(inputs6).delay > short.run(inputs2).delay


class TestVotingAndParity:
    def test_majority_tree_9(self):
        sim = CircuitSimulator(majority_tree_netlist(9))
        # 9 votes: tree of MAJ3 gates (approximate majority). Verify
        # the tree agrees with the per-group majority reduction.
        for pattern in range(2 ** 9):
            bits = [(pattern >> i) & 1 for i in range(9)]
            inputs = {f"v{i}": bits[i] for i in range(9)}
            got = sim.run(inputs).outputs["vote"]
            groups = [majority(*bits[j:j + 3]) for j in (0, 3, 6)]
            assert got == majority(*groups)

    def test_majority_tree_validation(self):
        with pytest.raises(ValueError, match="power of 3"):
            majority_tree_netlist(6)

    @given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=7))
    @settings(max_examples=25, deadline=None)
    def test_parity_chain(self, bits):
        sim = CircuitSimulator(parity_chain_netlist(len(bits)))
        inputs = {f"d{i}": b for i, b in enumerate(bits)}
        assert sim.run(inputs).outputs["p"] == xor(*bits)


class TestNetworkModeGateTypes:
    """Every wave-modelled gate type agrees with its boolean model."""

    @pytest.mark.parametrize("gate_type,reference", [
        ("MAJ3", majority),
        ("NMAJ3", lambda a, b, c: 1 - majority(a, b, c)),
    ])
    def test_three_input_types(self, gate_type, reference):
        net = Netlist("t3")
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_output("y")
        net.add_gate("g", gate_type, ["a", "b", "c"], ["y", None])
        sim = CircuitSimulator(net, model="network")
        for bits in product((0, 1), repeat=3):
            inputs = dict(zip(("a", "b", "c"), bits))
            assert sim.run(inputs).outputs["y"] == reference(*bits), \
                (gate_type, bits)

    @pytest.mark.parametrize("gate_type,reference", [
        ("XOR", xor),
        ("XNOR", lambda a, b: 1 - xor(a, b)),
        ("AND", lambda a, b: a & b),
        ("NAND", lambda a, b: 1 - (a & b)),
        ("OR", lambda a, b: a | b),
        ("NOR", lambda a, b: 1 - (a | b)),
    ])
    def test_two_input_types(self, gate_type, reference):
        net = Netlist("t2")
        net.add_input("a")
        net.add_input("b")
        net.add_output("y")
        net.add_gate("g", gate_type, ["a", "b"], ["y", None])
        sim = CircuitSimulator(net, model="network")
        for bits in product((0, 1), repeat=2):
            inputs = dict(zip(("a", "b"), bits))
            assert sim.run(inputs).outputs["y"] == reference(*bits), \
                (gate_type, bits)


class TestTypedNetlistErrors:
    """validate()/topological_order() raise the repro.errors leaves,
    each of which stays a ValueError for backward compatibility."""

    def test_dangling_net_typed(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g", "XOR", ["a", "ghost"], ["o", None])
        with pytest.raises(DanglingNetError) as excinfo:
            net.validate()
        assert "ghost" in str(excinfo.value)
        assert isinstance(excinfo.value, (NetlistError, ReproError,
                                          ValueError))

    def test_loop_typed(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g1", "XOR", ["a", "y"], ["x", None])
        net.add_gate("g2", "REPEATER", ["x"], ["y"])
        with pytest.raises(CombinationalLoopError):
            net.topological_order()
        with pytest.raises(CombinationalLoopError):
            net.validate()

    def test_drive_conflict_typed(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g1", "REPEATER", ["a"], ["x"])
        with pytest.raises(DriveConflictError):
            net.add_gate("g2", "REPEATER", ["a"], ["x"])

    def test_fanout_exceeded_typed(self):
        net = Netlist()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g1", "XOR", ["a", "b"], ["x", None])
        net.add_gate("g2", "REPEATER", ["x"], ["y1"])
        net.add_gate("g3", "REPEATER", ["x"], ["y2"])
        with pytest.raises(FanOutExceededError) as excinfo:
            net.validate()
        assert "x" in str(excinfo.value)

    def test_cascade_simulator_validates_on_construction(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("g", "XOR", ["a", "ghost"], ["o", None])
        with pytest.raises(NetlistError):
            CascadeSimulator(net)


class TestCascadeFixtureTruthTables:
    """The four synthesis fixtures reproduce their exhaustive truth
    tables through CascadeSimulator (ISSUE satellite)."""

    def test_full_adder(self):
        net = full_adder_netlist()
        table = CascadeSimulator(net).truth_table()
        assert len(table) == 8
        for bits, out in table.items():
            assign = dict(zip(net.primary_inputs, bits))
            s, c = full_adder(assign["a"], assign["b"], assign["cin"])
            assert out == {"sum": s, "carry": c}, bits

    def test_ripple_carry_adder(self):
        width = 2
        net = ripple_carry_adder_netlist(width)
        table = CascadeSimulator(net).truth_table()
        assert len(table) == 2 ** (2 * width + 1)
        for bits, out in table.items():
            assign = dict(zip(net.primary_inputs, bits))
            a = sum(assign[f"a{i}"] << i for i in range(width))
            b = sum(assign[f"b{i}"] << i for i in range(width))
            total = sum(out[f"s{i}"] << i for i in range(width)) \
                + (out["cout"] << width)
            assert total == a + b + assign["cin"], bits

    def test_majority_tree(self):
        net = majority_tree_netlist(9)
        table = CascadeSimulator(net).truth_table()
        assert len(table) == 512
        for bits, out in table.items():
            assign = dict(zip(net.primary_inputs, bits))
            votes = [assign[f"v{i}"] for i in range(9)]
            groups = [majority(*votes[j:j + 3]) for j in (0, 3, 6)]
            assert out["vote"] == majority(*groups), bits

    def test_parity_chain(self):
        net = parity_chain_netlist(5)
        table = CascadeSimulator(net).truth_table()
        assert len(table) == 32
        for bits, out in table.items():
            assert out["p"] == xor(*bits), bits


class TestSimulatorValidation:
    def test_missing_inputs(self):
        sim = CircuitSimulator(full_adder_netlist())
        with pytest.raises(ValueError, match="missing primary inputs"):
            sim.run({"a": 0})

    def test_unknown_inputs(self):
        sim = CircuitSimulator(full_adder_netlist())
        with pytest.raises(ValueError, match="unknown primary inputs"):
            sim.run({"a": 0, "b": 0, "cin": 0, "zz": 1})

    def test_non_binary_input(self):
        sim = CircuitSimulator(full_adder_netlist())
        with pytest.raises(ValueError, match="must be 0 or 1"):
            sim.run({"a": 2, "b": 0, "cin": 0})

    def test_bad_model(self):
        with pytest.raises(ValueError):
            CircuitSimulator(full_adder_netlist(), model="quantum")

    def test_exhaustive_check_helper(self):
        sim = CircuitSimulator(full_adder_netlist())

        def reference(assign):
            s, c = full_adder(assign["a"], assign["b"], assign["cin"])
            return {"sum": s, "carry": c}

        assert sim.exhaustive_check(reference)

        def wrong(assign):
            return {"sum": 0, "carry": 0}

        assert not sim.exhaustive_check(wrong)
