"""Hamming(7,4) encoder/corrector tests over spin-wave gates."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitSimulator
from repro.circuits.faults import FaultySimulator, StuckAtFault
from repro.circuits.hamming import (
    hamming74_corrector_netlist,
    hamming74_decode,
    hamming74_encode,
    hamming74_encoder_netlist,
    run_corrector,
)

ALL_DATA = list(product((0, 1), repeat=4))


class TestReferenceCode:
    def test_encode_decode_round_trip(self):
        for data in ALL_DATA:
            codeword = hamming74_encode(data)
            decoded, position = hamming74_decode(codeword)
            assert decoded == data
            assert position == 0

    def test_single_error_corrected(self):
        for data in ALL_DATA:
            codeword = list(hamming74_encode(data))
            for error in range(7):
                corrupted = codeword.copy()
                corrupted[error] ^= 1
                decoded, position = hamming74_decode(corrupted)
                assert decoded == data
                assert position == error + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming74_encode((0, 1))
        with pytest.raises(ValueError):
            hamming74_decode((0,) * 6)
        with pytest.raises(ValueError):
            hamming74_encode((0, 1, 2, 0))


class TestEncoderNetlist:
    @pytest.fixture(scope="class")
    def simulator(self):
        return CircuitSimulator(hamming74_encoder_netlist())

    def test_matches_reference(self, simulator):
        for data in ALL_DATA:
            inputs = {f"d{i + 1}": b for i, b in enumerate(data)}
            outputs = simulator.run(inputs).outputs
            codeword = tuple(outputs[f"c{i}"] for i in range(1, 8))
            assert codeword == hamming74_encode(data), data

    def test_structure(self):
        net = hamming74_encoder_netlist()
        counts = net.count_by_type()
        assert counts["XOR"] == 6      # three 3-input parity chains
        assert counts["REPEATER"] == 4  # data pass-throughs


class TestCorrectorNetlist:
    @pytest.fixture(scope="class")
    def simulator(self):
        return CircuitSimulator(hamming74_corrector_netlist())

    def test_clean_codewords_pass(self, simulator):
        for data in ALL_DATA:
            codeword = hamming74_encode(data)
            assert run_corrector(simulator, codeword) == data, data

    def test_corrects_every_single_error(self, simulator):
        for data in ALL_DATA:
            codeword = list(hamming74_encode(data))
            for error in range(7):
                corrupted = codeword.copy()
                corrupted[error] ^= 1
                assert run_corrector(simulator, corrupted) == data, \
                    (data, error)

    @given(st.tuples(*[st.sampled_from([0, 1])] * 4),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_random_channel(self, data, error):
        simulator = _cached_corrector()
        codeword = list(hamming74_encode(data))
        if error:
            codeword[error - 1] ^= 1
        assert run_corrector(simulator, codeword) == data

    def test_end_to_end_with_stuck_at_channel_fault(self):
        # A stuck-at fault on one received codeword bit is exactly a
        # (possibly persistent) single-bit channel error: the corrector
        # must mask it for every data word.
        netlist = hamming74_corrector_netlist()
        for position in range(1, 8):
            for value in (0, 1):
                faulty = FaultySimulator(
                    netlist, StuckAtFault(f"c{position}", value))
                for data in ALL_DATA:
                    codeword = hamming74_encode(data)
                    inputs = {f"c{i + 1}": b
                              for i, b in enumerate(codeword)}
                    outputs = faulty.run(inputs).outputs
                    decoded = tuple(outputs[f"d{i}"] for i in range(1, 5))
                    assert decoded == data, (position, value, data)


_CACHE = {}


def _cached_corrector():
    if "sim" not in _CACHE:
        _CACHE["sim"] = CircuitSimulator(hamming74_corrector_netlist())
    return _CACHE["sim"]
