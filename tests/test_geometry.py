"""Geometry/CSG mask tests."""

import numpy as np
import pytest

from repro.micromag import (
    Mesh,
    difference,
    disk,
    edge_damping_profile,
    intersection,
    polygon,
    rasterize,
    rectangle,
    roughen_edges,
    strip,
    union,
)


@pytest.fixture
def canvas():
    return Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(40, 40, 1))


class TestPrimitives:
    def test_rectangle_area(self, canvas):
        mask = rasterize(canvas, rectangle(0, 0, 100e-9, 50e-9))
        assert mask.sum() == 20 * 10

    def test_rectangle_corner_order_irrelevant(self, canvas):
        a = rasterize(canvas, rectangle(0, 0, 100e-9, 50e-9))
        b = rasterize(canvas, rectangle(100e-9, 50e-9, 0, 0))
        assert np.array_equal(a, b)

    def test_disk_area_approximates_circle(self, canvas):
        r = 50e-9
        mask = rasterize(canvas, disk(100e-9, 100e-9, r))
        area = mask.sum() * (5e-9) ** 2
        assert area == pytest.approx(np.pi * r * r, rel=0.1)

    def test_disk_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            disk(0, 0, 0.0)

    def test_horizontal_strip_matches_rectangle(self, canvas):
        s = rasterize(canvas, strip((20e-9, 100e-9), (180e-9, 100e-9),
                                    width=30e-9, extend_ends=False))
        r = rasterize(canvas, rectangle(20e-9, 85e-9, 180e-9, 115e-9))
        assert np.array_equal(s, r)

    def test_diagonal_strip_width(self, canvas):
        mask = rasterize(canvas, strip((20e-9, 20e-9), (180e-9, 180e-9),
                                       width=30e-9, extend_ends=False))
        length = np.hypot(160e-9, 160e-9)
        expected_cells = length * 30e-9 / (5e-9) ** 2
        assert mask.sum() == pytest.approx(expected_cells, rel=0.15)

    def test_strip_rejects_degenerate(self):
        with pytest.raises(ValueError):
            strip((0, 0), (0, 0), width=10e-9)
        with pytest.raises(ValueError):
            strip((0, 0), (1e-9, 0), width=0.0)

    def test_polygon_triangle(self, canvas):
        tri = polygon([(0, 0), (200e-9, 0), (0, 200e-9)])
        mask = rasterize(canvas, tri)
        area = mask.sum() * (5e-9) ** 2
        assert area == pytest.approx(0.5 * 200e-9 * 200e-9, rel=0.1)

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValueError):
            polygon([(0, 0), (1, 1)])


class TestCSG:
    def test_union(self, canvas):
        a = rectangle(0, 0, 50e-9, 50e-9)
        b = rectangle(100e-9, 100e-9, 150e-9, 150e-9)
        mask = rasterize(canvas, union(a, b))
        assert mask.sum() == rasterize(canvas, a).sum() \
            + rasterize(canvas, b).sum()

    def test_intersection(self, canvas):
        a = rectangle(0, 0, 100e-9, 100e-9)
        b = rectangle(50e-9, 50e-9, 150e-9, 150e-9)
        mask = rasterize(canvas, intersection(a, b))
        assert mask.sum() == 10 * 10

    def test_difference(self, canvas):
        outer = rectangle(0, 0, 100e-9, 100e-9)
        hole = rectangle(25e-9, 25e-9, 75e-9, 75e-9)
        mask = rasterize(canvas, difference(outer, hole))
        assert mask.sum() == 20 * 20 - 10 * 10

    def test_empty_combinators_raise(self):
        with pytest.raises(ValueError):
            union()
        with pytest.raises(ValueError):
            intersection()


class TestRoughenEdges:
    def test_zero_probability_is_identity(self, canvas, rng):
        mask = rasterize(canvas, rectangle(0, 0, 150e-9, 150e-9))
        out = roughen_edges(mask, 0.0, rng)
        assert np.array_equal(out, mask)

    def test_only_edge_cells_removed(self, canvas, rng):
        mask = rasterize(canvas, rectangle(0, 0, 150e-9, 150e-9))
        out = roughen_edges(mask, 1.0, rng)
        # Interior (4-neighbourhood fully inside) must be intact.
        interior = mask.copy()
        for axis, shift in ((1, 1), (1, -1), (2, 1), (2, -1)):
            interior &= np.roll(mask, shift, axis=axis)
        assert np.array_equal(out & interior, interior)
        assert out.sum() < mask.sum()

    def test_input_not_modified(self, canvas, rng):
        mask = rasterize(canvas, rectangle(0, 0, 150e-9, 150e-9))
        original = mask.copy()
        roughen_edges(mask, 0.5, rng)
        assert np.array_equal(mask, original)

    def test_probability_validation(self, canvas, rng):
        mask = rasterize(canvas, rectangle(0, 0, 150e-9, 150e-9))
        with pytest.raises(ValueError):
            roughen_edges(mask, 1.5, rng)


class TestEdgeDamping:
    def test_bulk_keeps_base_alpha(self, canvas):
        mask = np.ones(canvas.scalar_shape, dtype=bool)
        alpha = edge_damping_profile(canvas, mask, base_alpha=0.004,
                                     ramp_width=30e-9, max_alpha=0.5)
        centre = alpha[0, 20, 20]
        assert centre == pytest.approx(0.004)

    def test_edges_reach_high_damping(self, canvas):
        mask = np.ones(canvas.scalar_shape, dtype=bool)
        alpha = edge_damping_profile(canvas, mask, base_alpha=0.004,
                                     ramp_width=50e-9, max_alpha=0.5,
                                     axes=(0,))
        assert alpha[0, 20, 0] > 0.3
        assert alpha[0, 20, -1] > 0.3

    def test_vacuum_is_zero(self, canvas):
        mask = np.zeros(canvas.scalar_shape, dtype=bool)
        mask[0, 10:30, 10:30] = True
        alpha = edge_damping_profile(canvas, mask, 0.004, 30e-9)
        assert np.all(alpha[~mask] == 0.0)

    def test_monotone_ramp(self, canvas):
        mask = np.ones(canvas.scalar_shape, dtype=bool)
        alpha = edge_damping_profile(canvas, mask, 0.004, 60e-9, axes=(0,))
        row = alpha[0, 20, :20]
        assert np.all(np.diff(row) <= 1e-12)

    def test_validation(self, canvas):
        mask = np.ones(canvas.scalar_shape, dtype=bool)
        with pytest.raises(ValueError):
            edge_damping_profile(canvas, mask, 0.4, 10e-9, max_alpha=0.1)
        with pytest.raises(ValueError):
            edge_damping_profile(canvas, mask, 0.004, -1.0)
