"""Gate-level tests (network backend; FDTD cross-checks live in
test_integration.py to keep this file fast)."""

import math

import pytest

from repro.core import (
    DerivedTriangleGate,
    PAPER_ARRIVAL_MODEL,
    PAPER_TABLE_I,
    TriangleMajorityGate,
    TriangleXorGate,
    paper_maj3_dimensions,
    paper_table_i_gate,
    paper_table_ii_gate,
)
from repro.core.logic import (
    and_,
    input_patterns,
    majority,
    nand,
    nor,
    or_,
    xnor,
    xor,
)
from repro.physics import AttenuationModel


class TestTriangleMajorityGate:
    def test_full_truth_table(self):
        gate = TriangleMajorityGate()
        for bits, result in gate.truth_table().items():
            assert result.expected == majority(*bits)
            assert result.correct, bits
            assert result.fanout_matched, bits

    def test_inverted_gate(self):
        gate = TriangleMajorityGate(invert_output=True)
        for bits, result in gate.truth_table().items():
            assert result.expected == 1 - majority(*bits)
            assert result.correct, bits

    def test_input_count_enforced(self):
        with pytest.raises(ValueError, match="3 inputs"):
            TriangleMajorityGate().evaluate((0, 1))

    def test_cell_counts_match_table_iii(self):
        gate = TriangleMajorityGate()
        assert gate.n_excitation_cells == 3
        assert gate.n_detection_cells == 2
        assert gate.n_cells == 5

    def test_normalized_table_ideal(self):
        gate = TriangleMajorityGate()
        table = gate.normalized_output_table()
        for bits, (o1, o2) in table.items():
            assert o1 == pytest.approx(o2, abs=1e-9)
            expected = 1.0 if len(set(bits)) == 1 else 1.0 / 3.0
            assert o1 == pytest.approx(expected, abs=1e-9)

    def test_normalized_table_calibrated_matches_paper(self):
        gate = paper_table_i_gate()
        table = gate.normalized_output_table()
        for bits, (o1, _o2) in table.items():
            assert o1 == pytest.approx(PAPER_TABLE_I[bits][0], abs=1e-9)

    def test_margins_are_wide_in_ideal_gate(self):
        gate = TriangleMajorityGate()
        for result in gate.truth_table().values():
            for detection in result.outputs.values():
                assert detection.margin > math.pi / 4

    def test_losses_do_not_flip_logic(self):
        gate = TriangleMajorityGate(
            attenuation=AttenuationModel(decay_length=5e-6),
            junction_transmission=0.8)
        for bits, result in gate.truth_table().items():
            assert result.correct, bits

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            TriangleMajorityGate().evaluate((0, 0, 0), backend="oommf")

    def test_rescaled_wavelength_still_works(self):
        dims = paper_maj3_dimensions(wavelength=110e-9, width=100e-9)
        gate = TriangleMajorityGate(dimensions=dims, frequency=5e9)
        for bits, result in gate.truth_table().items():
            assert result.correct, bits


class TestTriangleXorGate:
    def test_full_truth_table(self):
        gate = TriangleXorGate()
        for bits, result in gate.truth_table().items():
            assert result.expected == xor(*bits)
            assert result.correct, bits
            assert result.fanout_matched, bits

    def test_xnor_variant(self):
        gate = TriangleXorGate(xnor=True)
        for bits, result in gate.truth_table().items():
            assert result.expected == xnor(*bits)
            assert result.correct, bits

    def test_cell_counts_match_table_iii(self):
        gate = TriangleXorGate()
        assert gate.n_cells == 4

    def test_normalized_table_contrast(self):
        table = paper_table_ii_gate().normalized_output_table()
        assert table[(0, 0)][0] == pytest.approx(1.0)
        assert table[(1, 1)][0] == pytest.approx(1.0)
        assert table[(0, 1)][0] == pytest.approx(0.0, abs=1e-9)
        assert table[(1, 0)][0] == pytest.approx(0.0, abs=1e-9)

    def test_input_count_enforced(self):
        with pytest.raises(ValueError, match="2 inputs"):
            TriangleXorGate().evaluate((0, 1, 1))

    def test_custom_threshold(self):
        gate = TriangleXorGate(threshold=0.9)
        for bits, result in gate.truth_table().items():
            assert result.correct, bits


class TestDerivedGates:
    @pytest.mark.parametrize("function,reference", [
        ("AND", and_), ("OR", or_), ("NAND", nand), ("NOR", nor)])
    def test_truth_tables(self, function, reference):
        gate = DerivedTriangleGate(function)
        for (a, b), result in gate.truth_table().items():
            assert result.expected == reference(a, b), (function, a, b)
            assert result.correct, (function, a, b)

    def test_control_values(self):
        assert DerivedTriangleGate("AND").control_value == 0
        assert DerivedTriangleGate("OR").control_value == 1
        assert DerivedTriangleGate("NAND").control_value == 0

    def test_inversion_via_geometry(self):
        # NAND embeds the inverted-output majority gate.
        assert DerivedTriangleGate("NAND").majority_gate.invert_output
        assert not DerivedTriangleGate("AND").majority_gate.invert_output

    def test_cell_count_inherited(self):
        assert DerivedTriangleGate("AND").n_cells == 5

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            DerivedTriangleGate("XOR3")


class TestGateResult:
    def test_correct_and_fanout_flags(self):
        gate = TriangleMajorityGate()
        result = gate.evaluate((0, 1, 1))
        assert result.inputs == {"I1": 0, "I2": 1, "I3": 1}
        assert result.backend == "network"
        assert result.expected == 1
        assert set(result.outputs) == {"O1", "O2"}


class TestAsDevice:
    def test_maj3_device_view(self):
        from repro.core import DetectionMethod

        device = TriangleMajorityGate().as_device()
        assert device.n_cells == 5
        assert device.detection is DetectionMethod.PHASE
        assert device.fan_out == 2
        assert device.equal_energy_inputs

    def test_xor_device_view(self):
        from repro.core import DetectionMethod

        device = TriangleXorGate().as_device()
        assert device.n_cells == 4
        assert device.detection is DetectionMethod.THRESHOLD
