"""Fabrication-bridge tests: layout -> rasterised simulation geometry."""

import numpy as np
import pytest

from repro.core import fabricate, maj3_layout, xor_layout
from repro.core.fabric import build_wave_simulator, settle_periods_for


class TestFabricate:
    def test_terminals_present(self):
        fab = fabricate(xor_layout())
        assert set(fab.terminal_masks) == {"I1", "I2", "O1", "O2"}

    def test_maj_terminals(self):
        fab = fabricate(maj3_layout())
        assert set(fab.terminal_masks) == {"I1", "I2", "I3", "O1", "O2"}

    def test_terminal_patches_inside_mask(self):
        fab = fabricate(xor_layout())
        for name, patch in fab.terminal_masks.items():
            assert patch.any(), name
            assert not (patch & ~fab.mask).any(), name

    def test_mask_mirror_symmetric(self):
        # The FO2 property requires exact raster symmetry about the
        # gate axis (local y = 0 snapped to a cell boundary).
        fab = fabricate(xor_layout())
        axis_y = fab.layout.nodes["M"][1]
        boundary = int(round(axis_y / fab.cell_size))
        mask = fab.mask
        n = min(boundary, mask.shape[0] - boundary)
        lower = mask[boundary - n:boundary][::-1]
        upper = mask[boundary:boundary + n]
        assert np.array_equal(lower, upper)

    def test_output_patches_symmetric_sizes(self):
        fab = fabricate(maj3_layout())
        assert fab.terminal_masks["O1"].sum() \
            == fab.terminal_masks["O2"].sum()

    def test_single_mode_width_applied(self):
        fab = fabricate(xor_layout(), single_mode=True)
        # Count mask cells across the stem: must be < lambda/2 wide.
        m = fab.layout.nodes["M"]
        c = fab.layout.nodes["C"]
        ix = int(((m[0] + c[0]) / 2) / fab.cell_size)
        column = fab.mask[:, ix]
        width = column.sum() * fab.cell_size
        assert width < 0.5 * fab.layout.dimensions.wavelength + fab.cell_size

    def test_full_width_option(self):
        fab = fabricate(xor_layout(), single_mode=False)
        m = fab.layout.nodes["M"]
        c = fab.layout.nodes["C"]
        ix = int(((m[0] + c[0]) / 2) / fab.cell_size)
        width = fab.mask[:, ix].sum() * fab.cell_size
        assert width >= 45e-9  # the paper's 50 nm, up to rasterisation

    def test_custom_cell_size(self):
        fab = fabricate(xor_layout(), cell_size=5e-9)
        assert fab.cell_size == pytest.approx(5e-9)

    def test_terminations_reach_canvas_frame(self):
        # Output guides must extend into the absorber zone: some mask
        # cells of the extended arm lie within 1.5 lambda of the edge.
        fab = fabricate(xor_layout())
        lam = fab.layout.dimensions.wavelength
        frame = int(1.5 * lam / fab.cell_size)
        assert fab.mask[:, -frame:].any()


class TestSimulatorFactory:
    def test_builds_with_sources(self):
        fab = fabricate(xor_layout())
        sim = build_wave_simulator(fab, 10e9, {"I1": 0, "I2": 1})
        assert len(sim.sources) == 2

    def test_unknown_terminal_rejected(self):
        fab = fabricate(xor_layout())
        with pytest.raises(KeyError):
            build_wave_simulator(fab, 10e9, {"I9": 0})

    def test_settle_periods_covers_structure(self):
        fab = fabricate(maj3_layout())
        periods = settle_periods_for(fab)
        lx, ly, _ = fab.mesh.extent
        diagonal_wavelengths = (lx ** 2 + ly ** 2) ** 0.5 \
            / fab.layout.dimensions.wavelength
        assert periods > diagonal_wavelengths
