"""Regression tests for the deterministic thermal-seed helper.

Cached thermal-ablation runs are only reproducible if every process
that (re)computes a job draws the identical noise sequence; the seed
must therefore be a pure function of the job key.  These tests pin the
derivation so a refactor cannot silently change every cached
finite-temperature result.
"""

import numpy as np
import pytest

from repro.micromag import Mesh, Simulation
from repro.micromag.fields.thermal import (
    ThermalField,
    rng_from_key,
    seed_from_key,
)
from repro.physics import FECOB

# Pinned derivation: changing the hash, byte order or stream mixing
# breaks these constants and must be treated as a cache-format break.
REGRESSION_KEY = "thermal-regression"
REGRESSION_SEED = 2141001415502683703
REGRESSION_SEED_STREAM1 = 13575336103720191080


class TestSeedFromKey:
    def test_pinned_regression_values(self):
        assert seed_from_key(REGRESSION_KEY) == REGRESSION_SEED
        assert seed_from_key(REGRESSION_KEY, stream=1) == \
            REGRESSION_SEED_STREAM1

    def test_deterministic(self):
        assert seed_from_key("job-abc") == seed_from_key("job-abc")

    def test_distinct_keys_and_streams(self):
        assert seed_from_key("job-abc") != seed_from_key("job-abd")
        assert seed_from_key("job-abc", stream=0) != \
            seed_from_key("job-abc", stream=1)

    def test_bytes_and_str_agree(self):
        assert seed_from_key("job-abc") == seed_from_key(b"job-abc")

    def test_fits_in_64_bits(self):
        assert 0 <= seed_from_key(REGRESSION_KEY) < 2 ** 64

    def test_matches_job_spec_seed(self):
        """JobSpec.seed is seed_from_key applied to the job key."""
        from repro.runtime import JobSpec

        spec = JobSpec("repro.micromag.experiments:run_gate_case",
                       {"gate": "maj3", "bits": [0, 1, 1]})
        assert spec.seed() == seed_from_key(spec.key())


class TestRngFromKey:
    def test_identical_sequences(self):
        a = rng_from_key("job-abc").standard_normal(16)
        b = rng_from_key("job-abc").standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = rng_from_key("job-abc", stream=0).standard_normal(16)
        b = rng_from_key("job-abc", stream=1).standard_normal(16)
        assert not np.array_equal(a, b)


class TestThermalReproducibility:
    def test_thermal_field_bit_identical_across_generators(self):
        """Two ThermalFields seeded from the same key draw the same
        noise -- the property that makes cached thermal runs valid."""
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(8, 4, 1))
        fields = []
        for _ in range(2):
            field = ThermalField(mesh, ms=FECOB.ms, alpha=FECOB.alpha,
                                 gamma=FECOB.gamma, temperature=300.0,
                                 rng=rng_from_key("thermal-job"))
            field.refresh(dt=1e-14, step=0)
            fields.append(field.field())
        np.testing.assert_array_equal(fields[0], fields[1])

    def test_seeded_thermal_simulation_reproducible(self):
        """Full LLG runs at 300 K with key-derived seeds agree."""
        def run():
            mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(12, 4, 1))
            sim = Simulation(mesh, FECOB, demag="none", temperature=300.0,
                             rng=rng_from_key("thermal-sim-job"))
            sim.initialize((0, 0, 1))
            sim.run(duration=2e-13, dt=2e-14)
            return sim.m.copy()

        np.testing.assert_array_equal(run(), run())
