"""Wave-network tier tests."""

import cmath
import math

import pytest

from repro.core import WaveNetwork, maj3_layout, network_from_layout, xor_layout
from repro.physics import AttenuationModel, Wave

F = 10e9
LAM = 55e-9


class TestGraphMechanics:
    def test_single_edge_propagation_phase(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "B", 6 * LAM)
        out = net.output_wave({"A": 1.0 + 0j}, "B")
        assert out.amplitude == pytest.approx(1.0)
        assert out.phase == pytest.approx(0.0, abs=1e-9)

    def test_half_wavelength_inverts(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "B", 6.5 * LAM)
        out = net.output_wave({"A": 1.0 + 0j}, "B")
        assert abs(out.phase) == pytest.approx(math.pi, abs=1e-9)

    def test_junction_superposes(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "J", LAM)
        net.add_edge("B", "J", LAM)
        net.add_edge("J", "O", LAM)
        env = net.propagate({"A": 1.0, "B": 1.0})
        assert abs(env["O"]) == pytest.approx(2.0)
        env = net.propagate({"A": 1.0, "B": -1.0})
        assert abs(env["O"]) == pytest.approx(0.0, abs=1e-12)

    def test_split_duplicates(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "C", LAM)
        net.add_edge("C", "O1", LAM)
        net.add_edge("C", "O2", 2 * LAM)
        env = net.propagate({"A": 1.0})
        assert abs(env["O1"]) == pytest.approx(1.0)
        assert abs(env["O2"]) == pytest.approx(1.0)

    def test_transmission_factor(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "B", LAM, transmission=0.5)
        env = net.propagate({"A": 1.0})
        assert abs(env["B"]) == pytest.approx(0.5)

    def test_attenuation_applied(self):
        net = WaveNetwork(F, LAM,
                          attenuation=AttenuationModel(decay_length=LAM))
        net.add_edge("A", "B", LAM)
        env = net.propagate({"A": 1.0})
        assert abs(env["B"]) == pytest.approx(math.exp(-1.0))

    def test_cycle_detected(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "B", LAM)
        net.add_edge("B", "A", LAM)
        with pytest.raises(ValueError, match="cycle"):
            net.propagate({"A": 1.0})

    def test_unknown_injection_node(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "B", LAM)
        with pytest.raises(KeyError):
            net.propagate({"X": 1.0})

    def test_edge_validation(self):
        net = WaveNetwork(F, LAM)
        with pytest.raises(ValueError):
            net.add_edge("A", "B", -1.0)
        with pytest.raises(ValueError):
            net.add_edge("A", "B", 1.0, transmission=1.5)

    def test_linearity(self):
        net = WaveNetwork(F, LAM)
        net.add_edge("A", "J", 3 * LAM)
        net.add_edge("B", "J", 5 * LAM)
        net.add_edge("J", "O", 2 * LAM)
        a_only = net.propagate({"A": 0.7})["O"]
        b_only = net.propagate({"B": 0.4j})["O"]
        both = net.propagate({"A": 0.7, "B": 0.4j})["O"]
        assert both == pytest.approx(a_only + b_only)


class TestLayoutNetworks:
    def test_maj3_network_structure(self):
        net = network_from_layout(maj3_layout(), F)
        assert set(net.nodes) >= {"I1", "I2", "I3", "M", "C",
                                  "K1", "K2", "O1", "O2"}
        assert len(net.edges) == 11

    def test_maj3_fanout_symmetry(self):
        net = network_from_layout(maj3_layout(), F)
        for bits in ((0, 0, 0), (0, 1, 1), (1, 0, 1)):
            inj = {f"I{i+1}": Wave.logic(b, F).envelope
                   for i, b in enumerate(bits)}
            env = net.propagate(inj)
            assert abs(env["O1"]) == pytest.approx(abs(env["O2"]))
            # phases equal too: identical outputs, the FO2 claim.
            assert cmath.phase(env["O1"]) == pytest.approx(
                cmath.phase(env["O2"]), abs=1e-9)

    def test_maj3_unanimous_amplitude_three(self):
        net = network_from_layout(maj3_layout(), F)
        inj = {n: Wave.logic(0, F).envelope for n in ("I1", "I2", "I3")}
        env = net.propagate(inj)
        assert abs(env["O1"]) == pytest.approx(3.0)

    def test_maj3_minority_amplitude_one(self):
        net = network_from_layout(maj3_layout(), F)
        inj = {"I1": Wave.logic(1, F).envelope,
               "I2": Wave.logic(0, F).envelope,
               "I3": Wave.logic(0, F).envelope}
        env = net.propagate(inj)
        assert abs(env["O1"]) == pytest.approx(1.0)

    def test_junction_transmission_reduces_output(self):
        ideal = network_from_layout(maj3_layout(), F)
        lossy = network_from_layout(maj3_layout(), F,
                                    junction_transmission=0.8)
        inj = {n: Wave.logic(0, F).envelope for n in ("I1", "I2", "I3")}
        assert abs(lossy.propagate(inj)["O1"]) \
            < abs(ideal.propagate(inj)["O1"])

    def test_xor_network(self):
        net = network_from_layout(xor_layout(), F)
        same = net.propagate({"I1": Wave.logic(0, F).envelope,
                              "I2": Wave.logic(0, F).envelope})
        diff = net.propagate({"I1": Wave.logic(0, F).envelope,
                              "I2": Wave.logic(1, F).envelope})
        assert abs(same["O1"]) == pytest.approx(2.0)
        assert abs(diff["O1"]) == pytest.approx(0.0, abs=1e-12)
