"""Tests for the Section III-A extensions: MAJ5 and fan-out trees."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.components import DirectionalCoupler, Repeater
from repro.core.extended import FanoutTree, TriangleMajority5Gate
from repro.core.logic import input_patterns, majority
from repro.physics import AttenuationModel, Wave


class TestMajority5:
    def test_full_truth_table(self):
        gate = TriangleMajority5Gate()
        assert gate.is_functionally_correct()

    def test_every_pattern_fanout_matched(self):
        gate = TriangleMajority5Gate()
        for bits, outputs in gate.truth_table().items():
            assert outputs["O1"].logic_value == outputs["O2"].logic_value

    def test_cell_economy(self):
        # One extra cell per extra input: 5 + 2 = 7.
        gate = TriangleMajority5Gate()
        assert gate.n_excitation_cells == 5
        assert gate.n_cells == 7

    def test_input_count_enforced(self):
        with pytest.raises(ValueError, match="5 inputs"):
            TriangleMajority5Gate().evaluate((0, 1, 1))

    def test_stack_offset_validation(self):
        with pytest.raises(ValueError):
            TriangleMajority5Gate(stack_offset_wavelengths=0)

    def test_larger_stack_offset_still_works(self):
        gate = TriangleMajority5Gate(stack_offset_wavelengths=3)
        assert gate.is_functionally_correct()

    @given(st.lists(st.sampled_from([0, 1]), min_size=5, max_size=5))
    @settings(max_examples=32, deadline=None)
    def test_matches_reference_majority(self, bits):
        gate = TriangleMajority5Gate()
        outputs = gate.evaluate(bits)
        assert outputs["O1"].logic_value == majority(*bits)

    def test_survives_attenuation(self):
        gate = TriangleMajority5Gate(
            attenuation=AttenuationModel(decay_length=5e-6))
        assert gate.is_functionally_correct()


class TestFanoutTree:
    def test_depth_for(self):
        tree = FanoutTree()
        assert tree.depth_for(1) == 0
        assert tree.depth_for(2) == 1
        assert tree.depth_for(3) == 2
        assert tree.depth_for(4) == 2
        assert tree.depth_for(8) == 3

    def test_plan_counts(self):
        plan = FanoutTree().plan(4)
        assert plan.n_couplers == 3       # 1 + 2
        assert plan.n_repeaters == 4      # one per leaf
        assert plan.tree_depth == 2

    def test_leaf_amplitude_halves_power_per_level(self):
        plan = FanoutTree().plan(4)
        assert plan.leaf_amplitude_before_repeaters == pytest.approx(0.5)

    def test_fanout_one_is_free(self):
        plan = FanoutTree().plan(1)
        assert plan.n_couplers == 0
        assert plan.n_repeaters == 0
        assert plan.energy == 0.0
        assert plan.delay == 0.0

    def test_energy_is_repeater_count(self):
        tree = FanoutTree()
        plan = tree.plan(8)
        assert plan.energy == pytest.approx(8 * tree.repeater.energy)

    def test_distribute_regenerates_full_amplitude(self):
        tree = FanoutTree()
        copies = tree.distribute(Wave.logic(1, 10e9), 4)
        assert len(copies) == 4
        for copy in copies:
            assert copy.amplitude == pytest.approx(1.0)
            assert abs(copy.phase) == pytest.approx(math.pi)

    def test_depth_limit_enforced(self):
        # A deaf repeater (high sensitivity) cannot support deep trees.
        tree = FanoutTree(repeater=Repeater(minimum_input=0.6))
        with pytest.raises(ValueError, match="sensitivity"):
            tree.plan(4)
        assert tree.max_fanout() == 2

    def test_lossy_coupler_reduces_max_fanout(self):
        clean = FanoutTree()
        lossy = FanoutTree(coupler=DirectionalCoupler(excess_loss=0.7))
        assert lossy.max_fanout() < clean.max_fanout()

    def test_validation(self):
        tree = FanoutTree()
        with pytest.raises(ValueError):
            tree.depth_for(0)
