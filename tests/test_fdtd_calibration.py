"""Numerical-dispersion calibration tests for the wave tier."""

import pytest

from repro.fdtd.calibration import CalibrationResult, calibrate_wavelength, measure_guide_wavelength


class TestMeasurement:
    def test_measured_wavelength_close_to_nominal(self):
        measured = measure_guide_wavelength(55e-9, 10e9)
        assert measured == pytest.approx(55e-9, rel=0.02)

    def test_finer_grid_reduces_error(self):
        coarse = abs(measure_guide_wavelength(55e-9, 10e9,
                                              dx=55e-9 / 8) - 55e-9)
        fine = abs(measure_guide_wavelength(55e-9, 10e9,
                                            dx=55e-9 / 24) - 55e-9)
        assert fine < coarse


class TestCalibration:
    def test_compensation_hits_target(self):
        result = calibrate_wavelength(55e-9, 10e9)
        final = measure_guide_wavelength(result.compensated_wavelength,
                                         10e9, dx=55e-9 / 16.0)
        assert final == pytest.approx(55e-9, rel=2e-3)

    def test_reports_raw_error(self):
        result = calibrate_wavelength(55e-9, 10e9)
        assert 0.0 < abs(result.relative_error) < 0.05
        # Leapfrog under-propagates: wavelength comes out short.
        assert result.relative_error < 0

    def test_compensated_exceeds_target(self):
        # Compensation stretches the input wavelength.
        result = calibrate_wavelength(55e-9, 10e9)
        assert result.compensated_wavelength > result.target_wavelength

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_wavelength(55e-9, 10e9, iterations=0)
