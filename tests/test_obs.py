"""Tests for repro.obs: tracer, metrics, exporters, logging."""

import json
import logging
import pickle

import pytest

from repro import obs
from repro.runtime.report import JobRecord, utc_now_iso


def _remove_managed_handler():
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


@pytest.fixture(autouse=True)
def _clean_observer():
    """Never leak global tracer/logging state into (or out of) a test."""
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    _remove_managed_handler()
    yield
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    _remove_managed_handler()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_span_returns_null_singleton(self):
        a = obs.span("anything", k=1)
        b = obs.span("else")
        assert a is obs.NULL_SPAN
        assert b is obs.NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with obs.span("noop") as s:
            assert s.set(extra=1) is s
        assert obs.spans() == []

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.span("noop"):
                raise RuntimeError("boom")

    def test_no_context_when_disabled(self):
        assert obs.current_context() is None
        assert obs.current_trace_id() is None


class TestSpanNesting:
    def test_enable_returns_trace_id(self):
        tid = obs.enable()
        assert isinstance(tid, str) and len(tid) == 16
        assert obs.current_trace_id() == tid

    def test_nested_parent_child(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        spans = {s["name"]: s for s in obs.spans()}
        assert spans["inner"]["parent_id"] == outer.span_id
        assert spans["outer"]["parent_id"] is None

    def test_siblings_share_parent(self):
        obs.enable()
        with obs.span("root") as root:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        spans = {s["name"]: s for s in obs.spans()}
        assert spans["a"]["parent_id"] == root.span_id
        assert spans["b"]["parent_id"] == root.span_id
        assert spans["a"]["span_id"] != spans["b"]["span_id"]

    def test_attrs_and_set(self):
        obs.enable()
        with obs.span("work", items=3) as s:
            s.set(done=True)
        (rec,) = obs.spans()
        assert rec["attrs"] == {"items": 3, "done": True}

    def test_exception_records_error_attr(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("bad"):
                raise ValueError("nope")
        (rec,) = obs.spans()
        assert rec["attrs"]["error"] == "ValueError"

    def test_durations_nonnegative_and_nested_shorter(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s["name"]: s for s in obs.spans()}
        assert spans["inner"]["dur_ns"] >= 0
        assert spans["outer"]["dur_ns"] >= spans["inner"]["dur_ns"]

    def test_drain_clears_collector(self):
        obs.enable()
        with obs.span("once"):
            pass
        assert len(obs.drain_spans()) == 1
        assert obs.spans() == []


class TestCrossProcessContext:
    def test_context_roundtrips_dict_and_pickle(self):
        ctx = obs.TraceContext(trace_id="cafe", span_id="1.2")
        assert obs.TraceContext.from_dict(ctx.as_dict()) == ctx
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_current_context_carries_open_span(self):
        obs.enable(trace_id="feed")
        with obs.span("outer") as s:
            ctx = obs.current_context()
        assert ctx.trace_id == "feed"
        assert ctx.span_id == s.span_id

    def test_activate_parents_remote_spans(self):
        # Simulate the worker side of the executor's ship-back protocol.
        ctx = obs.TraceContext(trace_id="beef", span_id="parent.1")
        obs.activate(ctx)
        with obs.span("worker.job"):
            pass
        shipped = obs.deactivate()
        assert not obs.enabled()
        (rec,) = shipped
        assert rec["trace_id"] == "beef"
        assert rec["parent_id"] == "parent.1"

    def test_ingest_merges_into_local_collector(self):
        obs.enable(trace_id="beef")
        with obs.span("local"):
            pass
        obs.ingest([{"name": "remote", "trace_id": "beef",
                     "span_id": "9.1", "parent_id": None,
                     "ts_ns": 0, "dur_ns": 10, "pid": 9, "tid": 1,
                     "attrs": {}}])
        names = {s["name"] for s in obs.spans()}
        assert names == {"local", "remote"}

    def test_executor_pool_ships_spans_back(self):
        from repro import Executor, JobSpec

        obs.enable()
        ex = Executor(workers=2)
        result = ex.run([JobSpec(
            "repro.micromag.experiments:run_gate_case",
            {"gate": "xor", "bits": [0, 1], "tier": "network"},
            label="xor-01")])
        record = result.outcomes[0].record
        spans = obs.spans()
        pids = {s["pid"] for s in spans}
        names = {s["name"] for s in spans}
        if record.mode == "pool":  # pool spawn can degrade to serial
            assert len(pids) >= 2
        assert {"executor.run", "executor.job", "gate_case"} <= names
        assert len({s["trace_id"] for s in spans}) == 1
        assert record.trace_id == obs.current_trace_id()
        job = next(s for s in spans if s["name"] == "executor.job")
        gate = next(s for s in spans if s["name"] == "gate_case")
        assert gate["parent_id"] == job["span_id"]


class TestMetrics:
    def test_counter_accumulates(self):
        obs.counter("t.hits").inc()
        obs.counter("t.hits").inc(4)
        assert obs.metrics_snapshot()["counters"]["t.hits"] == 5

    def test_gauge_holds_last_value(self):
        obs.gauge("t.rate").set(2.0)
        obs.gauge("t.rate").set(7.5)
        assert obs.metrics_snapshot()["gauges"]["t.rate"] == 7.5

    def test_histogram_stats(self):
        h = obs.histogram("t.lat")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        stats = obs.metrics_snapshot()["histograms"]["t.lat"]
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(7.0)
        assert stats["min"] == 1.0 and stats["max"] == 4.0

    def test_reset_clears_everything(self):
        obs.counter("t.x").inc()
        obs.reset_metrics()
        snap = obs.metrics_snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}


class TestChromeExport:
    def _trace(self):
        obs.enable()
        with obs.span("parent", gate="xor"):
            with obs.span("child"):
                pass
        return obs.drain_spans()

    def test_schema(self):
        doc = obs.to_chrome_trace(self._trace(), metadata={"v": "1"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"] == {"v": "1"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["cat"] == "repro"
            assert isinstance(ev["ts"], float)
            assert isinstance(ev["dur"], float)
            assert {"name", "pid", "tid", "args"} <= set(ev)

    def test_args_carry_span_identity(self):
        doc = obs.to_chrome_trace(self._trace())
        by_name = {ev["name"]: ev for ev in doc["traceEvents"]}
        parent, child = by_name["parent"], by_name["child"]
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert parent["args"]["gate"] == "xor"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), self._trace())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_write_trace_file_dispatches_on_extension(self, tmp_path):
        spans = self._trace()
        jl = tmp_path / "trace.jsonl"
        assert obs.write_trace_file(str(jl), spans) == "jsonl"
        lines = jl.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] in {"parent", "child"}
        ch = tmp_path / "trace.json"
        assert obs.write_trace_file(str(ch), spans) == "chrome"
        assert "traceEvents" in json.loads(ch.read_text())

    def test_summary_aggregates_by_name(self):
        obs.enable()
        for _ in range(3):
            with obs.span("hot"):
                pass
        with obs.span("cold"):
            pass
        rows = obs.summarize_spans(obs.spans())
        by_name = {r["name"]: r for r in rows}
        assert by_name["hot"]["count"] == 3
        assert by_name["cold"]["count"] == 1
        text = obs.format_span_summary(obs.spans())
        assert "hot" in text and "cum" in text


class TestLogging:
    def test_package_root_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)

    def test_get_logger_prefixes(self):
        assert obs.get_logger("runtime.cache").name == "repro.runtime.cache"
        assert obs.get_logger().name == "repro"

    def test_parse_level(self):
        assert obs.parse_level("debug") == logging.DEBUG
        assert obs.parse_level("WARNING") == logging.WARNING
        with pytest.raises(ValueError):
            obs.parse_level("loud")

    def test_setup_logging_idempotent(self):
        import io

        stream = io.StringIO()
        obs.setup_logging("info", stream=stream)
        obs.setup_logging("debug", stream=stream)
        root = logging.getLogger("repro")
        marked = [h for h in root.handlers
                  if getattr(h, "_repro_obs_handler", False)]
        assert len(marked) == 1
        assert root.level == logging.DEBUG


class TestInstrumentedSolvers:
    def test_fdtd_step_metrics_and_span(self):
        import numpy as np

        from repro.fdtd import ScalarWaveSimulator

        mask = np.ones((16, 16), dtype=bool)
        sim = ScalarWaveSimulator(mask=mask, dx=10e-9, wavelength=110e-9,
                                  frequency=2.282e9)
        obs.enable()
        sim.step(5)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fdtd.steps"] == 5
        assert snap["counters"]["fdtd.cell_updates"] == 5 * 256
        assert snap["gauges"]["fdtd.steps_per_s"] > 0
        (rec,) = obs.spans()
        assert rec["name"] == "fdtd.step"
        assert rec["attrs"]["cells"] == 256

    def test_fdtd_progress_heartbeat(self):
        import numpy as np

        from repro.fdtd import ScalarWaveSimulator

        beats = []
        mask = np.ones((8, 8), dtype=bool)
        sim = ScalarWaveSimulator(
            mask=mask, dx=10e-9, wavelength=110e-9, frequency=2.282e9,
            progress=lambda n, t: beats.append((n, t)), progress_every=2)
        sim.step(5)
        assert [n for n, _ in beats] == [2, 4]
        assert sim.step_count == 5

    def test_llg_step_counter_and_progress(self):
        import numpy as np

        from repro.micromag.llg import RK4Integrator

        m = np.zeros((3, 1, 1, 4))
        m[2] = 1.0
        rhs = lambda t, y: np.zeros_like(y)  # noqa: E731
        beats = []
        integ = RK4Integrator(rhs, progress=lambda t, dt: beats.append(t))
        obs.enable()
        integ.step(0.0, m, 1e-13)
        assert obs.metrics_snapshot()["counters"]["llg.steps"] == 1
        assert beats == [pytest.approx(1e-13)]


class TestJobRecordTelemetryFields:
    def test_as_dict_includes_started_at_and_trace_id(self):
        rec = JobRecord(label="l", key="k", status="ok", mode="serial",
                        wall_time=0.1,
                        started_at="2026-08-06T00:00:00+00:00",
                        trace_id="cafe")
        d = rec.as_dict()
        assert d["started_at"] == "2026-08-06T00:00:00+00:00"
        assert d["trace_id"] == "cafe"

    def test_utc_now_iso_shape(self):
        stamp = utc_now_iso()
        assert stamp.endswith("+00:00")
        assert "T" in stamp


class TestPrometheusExporter:
    def test_counters_gauges_histograms_render(self):
        obs.counter("serve.requests").inc(3)
        obs.gauge("serve.uptime_s").set(12.5)
        obs.histogram("serve.latency_ms").observe(0.8)
        obs.histogram("serve.latency_ms").observe(3.0)
        text = obs.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text
        assert "repro_serve_uptime_s 12.5" in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_serve_latency_ms_count 2" in text
        assert "repro_serve_latency_ms_sum 3.8" in text

    def test_bucket_counts_are_cumulative(self):
        for value in (0.5, 1.5, 3.0, 300.0):
            obs.histogram("h").observe(value)
        text = obs.render_prometheus()
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_h_bucket")]
        counts = [float(l.split()[-1]) for l in lines]
        assert counts == sorted(counts)  # monotone non-decreasing
        assert counts[-1] == 4  # +Inf sees every observation

    def test_unset_gauges_are_skipped(self):
        obs.gauge("never.set")
        assert "never_set" not in obs.render_prometheus()

    def test_metric_name_sanitized(self):
        from repro.obs.prometheus import metric_name

        assert metric_name("serve.latency-ms") == "repro_serve_latency_ms"
        assert metric_name("9lives") == "repro_9lives"
