"""Tests for the resilience subsystem (``repro.resilience``).

Covers the contract promised in docs/RESILIENCE.md: the typed error
hierarchy, deterministic fault injection with per-site hit counters,
numerical health watchdogs on both solver tiers (an injected NaN must
surface as a NumericalDivergenceError carrying step diagnostics),
dt-halving remediation and tier degradation, atomic checkpoint/resume
with bit-identical continuation, the write-ahead job journal, the
circuit breaker state machine, and cache-corruption quarantine.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.errors import (
    CacheCorrupt,
    CheckpointError,
    CircuitOpen,
    FaultInjected,
    JobFailed,
    JobTimeout,
    NumericalDivergenceError,
    ReproError,
    SurrogateDomainError,
)
from repro.fdtd.scalar import ScalarWaveSimulator, WaveSource
from repro.micromag.experiments import run_gate_case
from repro.micromag.llg import RK4Integrator
from repro.resilience import (
    CheckpointManager,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    FieldWatchdog,
    JobJournal,
    MagnetisationWatchdog,
    RemediationPolicy,
    faults,
    load_checkpoint,
    read_journal,
    run_with_dt_remediation,
    save_checkpoint,
)
from repro.runtime import DiskCache, Executor, JobSpec
from repro.runtime.cache import cache_stats, count_quarantined
from repro.runtime.report import STATUS_HIT, STATUS_OK


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Every test leaves the process without an armed fault plan."""
    yield
    faults.uninstall()


# -- module-level job functions (portable to worker processes) --------------

def double(x):
    return 2 * x


class TestErrorHierarchy:
    def test_all_handled_failures_are_repro_errors(self):
        for exc_type in (JobTimeout, JobFailed, CacheCorrupt,
                         NumericalDivergenceError, CircuitOpen,
                         FaultInjected, CheckpointError,
                         SurrogateDomainError):
            assert issubclass(exc_type, ReproError)
        assert issubclass(ReproError, Exception)

    def test_divergence_error_carries_step_diagnostics(self):
        exc = NumericalDivergenceError(
            "fdtd", 1500, 6.5e-10, "non-finite field values",
            {"nonfinite_cells": 12, "checked_cells": 9216})
        assert exc.solver == "fdtd"
        assert exc.step == 1500
        assert exc.t == 6.5e-10
        assert exc.diagnostics["nonfinite_cells"] == 12
        text = str(exc)
        assert "step 1500" in text
        assert "non-finite field values" in text
        assert "nonfinite_cells=12" in text

    def test_circuit_open_clamps_retry_after(self):
        assert CircuitOpen("llg", retry_after=-3.0).retry_after == 0.0
        assert CircuitOpen("llg", retry_after=2.5).retry_after == 2.5

    def test_cache_corrupt_carries_key_and_reason(self):
        exc = CacheCorrupt("abc123", "ValueError: bad json")
        assert exc.key == "abc123"
        assert "bad json" in exc.reason


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="x", kind="error", at=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="x", kind="error", count=0)

    def test_spec_matches_window(self):
        spec = FaultSpec(site="x", kind="error", at=3, count=2)
        assert [spec.matches(h) for h in range(1, 7)] \
            == [False, False, True, True, False, False]

    def test_plan_json_roundtrip(self):
        plan = FaultPlan(specs=[
            FaultSpec(site="fdtd.step", kind="nan", at=7),
            FaultSpec(site="executor.invoke", kind="slow", delay_s=0.2),
        ], seed=42)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.sites() == ["executor.invoke", "fdtd.step"]


class TestTrip:
    def test_no_plan_is_inert(self):
        assert not faults.active()
        assert faults.trip("anything") is None
        assert faults.site_hits("anything") == 0

    def test_error_fault_fires_deterministically_in_window(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="error", at=2, count=2)]))
        assert faults.trip("executor.invoke") is None          # hit 1
        with pytest.raises(FaultInjected):                     # hit 2
            faults.trip("executor.invoke")
        with pytest.raises(FaultInjected):                     # hit 3
            faults.trip("executor.invoke")
        assert faults.trip("executor.invoke") is None          # hit 4
        assert faults.site_hits("executor.invoke") == 4

    def test_other_sites_are_unaffected(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="cache.load", kind="error")]))
        assert faults.trip("fdtd.step") is None

    def test_nan_and_corrupt_are_returned_not_executed(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="fdtd.step", kind="nan"),
            FaultSpec(site="cache.store", kind="corrupt")]))
        assert faults.trip("fdtd.step").kind == "nan"
        assert faults.trip("cache.store").kind == "corrupt"

    def test_install_resets_hit_counters(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="s", kind="nan", at=2)]))
        faults.trip("s")
        faults.install(FaultPlan(specs=[
            FaultSpec(site="s", kind="nan", at=2)]))
        assert faults.trip("s") is None  # counter restarted at hit 1

    def test_install_from_env(self):
        plan = FaultPlan(specs=[FaultSpec(site="s", kind="error")])
        assert faults.install_from_env({"REPRO_FAULTS": plan.to_json()})
        assert faults.installed_plan() == plan
        faults.uninstall()
        assert not faults.install_from_env({})
        with pytest.raises(ValueError, match="malformed REPRO_FAULTS"):
            faults.install_from_env({"REPRO_FAULTS": '{"specs": [{}]}'})


class TestWatchdogs:
    def test_observe_throttles_to_every(self):
        dog = FieldWatchdog(every=10)
        bad = np.full((4, 4), np.nan)
        for _ in range(9):
            dog.observe(0.0, u=bad)  # no check yet
        assert dog.checks == 0
        with pytest.raises(NumericalDivergenceError):
            dog.observe(0.0, u=bad)  # 10th call runs the check
        assert dog.checks == 1

    def test_field_nan_raises_with_diagnostics(self):
        dog = FieldWatchdog(every=1)
        u = np.ones((3, 3))
        u[1, 2] = np.inf
        with pytest.raises(NumericalDivergenceError) as info:
            dog.observe(2.5e-10, step=400, u=u)
        exc = info.value
        assert exc.solver == "fdtd"
        assert exc.step == 400
        assert exc.diagnostics["nonfinite_cells"] == 1

    def test_field_runaway_growth(self):
        dog = FieldWatchdog(every=1, growth_factor=10.0)
        dog.observe(0.0, u=np.ones((2, 2)))      # baseline peak = 1
        dog.observe(0.0, u=5.0 * np.ones((2, 2)))  # within bound
        with pytest.raises(NumericalDivergenceError, match="runaway"):
            dog.observe(0.0, u=20.0 * np.ones((2, 2)))

    def test_field_absolute_bound(self):
        dog = FieldWatchdog(every=1, max_amplitude=2.0)
        with pytest.raises(NumericalDivergenceError, match="absolute"):
            dog.observe(0.0, u=3.0 * np.ones((2, 2)))

    def test_magnetisation_drift(self):
        dog = MagnetisationWatchdog(every=1, max_drift=0.01)
        m = np.zeros((3, 1, 2, 2))
        m[2] = 1.0
        dog.observe(0.0, m=m)  # exactly unit norm
        m[2] = 1.05
        with pytest.raises(NumericalDivergenceError, match="unit sphere"):
            dog.observe(0.0, m=m)

    def test_magnetisation_mask_restricts_check(self):
        dog = MagnetisationWatchdog(every=1, max_drift=0.01)
        mask = np.array([[[True, False]]])
        m = np.zeros((3, 1, 1, 2))
        m[2, ..., 0] = 1.0   # in-mask: healthy
        m[2, ..., 1] = 7.0   # vacuum cell: ignored
        dog.observe(0.0, m=m, mask=mask)  # must not raise

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FieldWatchdog(every=0)
        with pytest.raises(ValueError):
            FieldWatchdog(growth_factor=1.0)
        with pytest.raises(ValueError):
            MagnetisationWatchdog(max_drift=0.0)


class TestDtRemediation:
    def test_clean_run_uses_original_dt(self):
        result, dt_used, halvings = run_with_dt_remediation(
            lambda dt: f"ok@{dt}", 4e-14)
        assert result == "ok@4e-14"
        assert dt_used == 4e-14
        assert halvings == 0

    def test_divergence_halves_dt_and_retries(self):
        attempts = []

        def run(dt):
            attempts.append(dt)
            if len(attempts) < 3:
                raise NumericalDivergenceError("llg", 10, 1e-12, "blew up")
            return "recovered"

        result, dt_used, halvings = run_with_dt_remediation(run, 8e-14)
        assert result == "recovered"
        assert halvings == 2
        assert dt_used == pytest.approx(2e-14)
        assert attempts == [pytest.approx(8e-14), pytest.approx(4e-14),
                            pytest.approx(2e-14)]

    def test_exhausted_budget_reraises(self):
        def run(dt):
            raise NumericalDivergenceError("llg", 10, 1e-12, "still bad")

        with pytest.raises(NumericalDivergenceError):
            run_with_dt_remediation(run, 1e-13,
                                    RemediationPolicy(dt_halvings=1))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RemediationPolicy(dt_halvings=-1)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.npz")
        arrays = {"u": np.arange(6.0).reshape(2, 3),
                  "u_prev": np.ones((2, 3))}
        meta = {"solver": "fdtd", "t": 1.5e-9, "step_count": 300}
        save_checkpoint(path, arrays, meta)
        loaded, loaded_meta = load_checkpoint(path)
        np.testing.assert_array_equal(loaded["u"], arrays["u"])
        np.testing.assert_array_equal(loaded["u_prev"], arrays["u_prev"])
        assert loaded_meta == meta

    def test_meta_key_is_reserved(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(str(tmp_path / "x.npz"),
                            {"__meta__": np.zeros(1)}, {})

    def test_missing_and_corrupt_files_raise_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.npz"))
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"not a zip archive at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(garbage))

    def test_manager_save_cadence_and_lazy_state(self, tmp_path):
        calls = []

        def state():
            calls.append(1)
            return {"u": np.zeros(2)}, {"t": 0.0}

        manager = CheckpointManager(str(tmp_path / "ck.npz"), every_steps=5)
        saved = [manager.maybe_save(step, state) for step in range(1, 11)]
        assert saved == [False] * 4 + [True] + [False] * 4 + [True]
        assert len(calls) == 2  # state provider only invoked on saves
        assert manager.saves == 2
        assert manager.last_step == 10
        assert manager.exists()


def _make_fdtd(checkpoint=None, watchdog=None):
    """Small driven waveguide, deterministic leapfrog evolution."""
    mask = np.zeros((24, 24), dtype=bool)
    mask[10:14, :] = True
    sim = ScalarWaveSimulator(mask=mask, dx=10e-9, wavelength=110e-9,
                              frequency=2.282e9, checkpoint=checkpoint,
                              watchdog=watchdog)
    source = np.zeros_like(mask)
    source[10:14, 2:4] = True
    sim.add_source(WaveSource.logic(source & mask, 1, amplitude=1.0))
    return sim


class TestFdtdResilience:
    def test_injected_nan_raises_divergence_with_step(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="fdtd.step", kind="nan", at=5)]))
        sim = _make_fdtd(watchdog=FieldWatchdog(every=10))
        with pytest.raises(NumericalDivergenceError) as info:
            sim.step(50)
        exc = info.value
        assert exc.solver == "fdtd"
        assert exc.step == 10  # first health check after the hit-5 NaN
        assert exc.diagnostics["nonfinite_cells"] >= 1

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "wave.npz")
        first = _make_fdtd(checkpoint=CheckpointManager(path,
                                                        every_steps=50))
        first.step(100)  # checkpoints at steps 50 and 100, then "crashes"

        resumed = _make_fdtd(checkpoint=CheckpointManager(path,
                                                          every_steps=50))
        assert resumed.restore_checkpoint()
        assert resumed.step_count == 100
        resumed.step(100)

        reference = _make_fdtd()
        reference.step(200)
        np.testing.assert_array_equal(resumed.u, reference.u)
        np.testing.assert_array_equal(resumed.u_prev, reference.u_prev)
        assert resumed.t == reference.t

    def test_restore_without_manager_raises(self):
        with pytest.raises(CheckpointError, match="no CheckpointManager"):
            _make_fdtd().restore_checkpoint()

    def test_restore_with_no_file_is_fresh_run(self, tmp_path):
        sim = _make_fdtd(checkpoint=CheckpointManager(
            str(tmp_path / "never.npz")))
        assert sim.restore_checkpoint() is False

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "wrong.npz")
        save_checkpoint(path, {"u": np.zeros((2, 2)),
                               "u_prev": np.zeros((2, 2))},
                        {"t": 0.0, "step_count": 1, "shape": [2, 2]})
        sim = _make_fdtd(checkpoint=CheckpointManager(path))
        with pytest.raises(CheckpointError, match="does not match"):
            sim.restore_checkpoint()


class TestLlgResilience:
    def test_injected_nan_raises_divergence(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="llg.step", kind="nan", at=3)]))
        mask = np.ones((1, 2, 2), dtype=bool)
        m = np.zeros((3, 1, 2, 2))
        m[2] = 1.0
        integrator = RK4Integrator(lambda t, field: np.zeros_like(field),
                                   mask=mask,
                                   watchdog=MagnetisationWatchdog(every=1))
        m = integrator.step(0.0, m, 1e-14)
        m = integrator.step(1e-14, m, 1e-14)
        with pytest.raises(NumericalDivergenceError) as info:
            integrator.step(2e-14, m, 1e-14)
        assert info.value.solver == "llg"
        assert "non-finite" in info.value.reason


class TestTierDegradation:
    def test_fdtd_divergence_degrades_to_network(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="fdtd.step", kind="nan", at=50)]))
        case = run_gate_case("xor", (0, 1), tier="fdtd")
        assert case["degraded_from"] == "fdtd"
        assert case["tier"] == "network"
        assert case["correct"]

    def test_remediate_false_propagates_divergence(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="fdtd.step", kind="nan", at=50)]))
        with pytest.raises(NumericalDivergenceError):
            run_gate_case("xor", (0, 1), tier="fdtd", remediate=False)

    def test_surrogate_fault_degrades_to_network(self):
        # The fault fires before model lookup, so no fitted surrogate
        # is needed; the ladder must hop to the network tier and record
        # where it came from.
        faults.install(FaultPlan(specs=[
            FaultSpec(site="surrogate.query", kind="error")]))
        case = run_gate_case("xor", (0, 1), tier="surrogate")
        assert case["tier"] == "network"
        assert case["degraded_from"] == "surrogate"
        assert case["degradation_path"] == ["surrogate", "network"]
        assert case["correct"]

    def test_surrogate_double_fault_reaches_fdtd(self):
        # Both the surrogate and network rungs fail: the ladder walks
        # surrogate -> network -> fdtd and the full hop sequence is
        # recorded.
        faults.install(FaultPlan(specs=[
            FaultSpec(site="surrogate.query", kind="error"),
            FaultSpec(site="network.evaluate", kind="error")]))
        case = run_gate_case("xor", (0, 1), tier="surrogate")
        assert case["tier"] == "fdtd"
        assert case["degraded_from"] == "surrogate"
        assert case["degradation_path"] == ["surrogate", "network", "fdtd"]
        assert case["correct"]

    def test_surrogate_remediate_false_propagates_fault(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="surrogate.query", kind="error")]))
        with pytest.raises(FaultInjected):
            run_gate_case("xor", (0, 1), tier="surrogate",
                          remediate=False)

    def test_physical_tier_fault_still_propagates(self):
        # Injected faults on the physical tiers are test instrumentation,
        # not degradable failures: the ladder must NOT absorb them.
        faults.install(FaultPlan(specs=[
            FaultSpec(site="fdtd.evaluate", kind="error")]))
        with pytest.raises(FaultInjected):
            run_gate_case("xor", (0, 1), tier="fdtd")


class TestJournal:
    def test_write_ahead_and_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            journal.start("k1", "first")
            journal.done("k1", "ok", attempts=1)
            journal.start("k2", "interrupted-one")
        state = read_journal(path)
        assert state.completed == {"k1": "ok"}
        assert state.interrupted == {"k2"}
        assert state.labels["k2"] == "interrupted-one"
        assert "1 completed, 1 interrupted" in state.summary()

    def test_torn_final_record_is_ignored(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        with JobJournal(str(path)) as journal:
            journal.start("k1", "x")
            journal.done("k1", "ok")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "start", "key": "k2", "la')  # kill -9
        state = read_journal(str(path))
        assert state.completed == {"k1": "ok"}
        assert not state.interrupted

    def test_missing_file_reads_empty(self, tmp_path):
        state = read_journal(str(tmp_path / "nope.jsonl"))
        assert state.records == 0

    def test_fresh_mode_truncates_resume_appends(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JobJournal(path) as journal:
            journal.done("old", "ok")
        with JobJournal(path, resume=True) as journal:
            assert journal.completed_status("old") == "ok"
        with JobJournal(path) as journal:  # fresh run truncates
            assert journal.completed_status("old") is None
        assert read_journal(path).records == 0

    def test_closed_journal_raises_typed_error(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        journal.close()
        with pytest.raises(ReproError, match="closed"):
            journal.start("k", "x")


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        return CircuitBreaker("llg", fail_threshold=2, reset_timeout=10.0,
                              clock=lambda: self.now, **kwargs)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker()
        breaker.allow()
        breaker.record_failure()
        breaker.allow()  # one failure is under threshold
        breaker.record_failure()
        assert breaker.is_open
        with pytest.raises(CircuitOpen) as info:
            breaker.allow()
        assert info.value.retry_after == pytest.approx(10.0)

    def test_success_resets_failure_streak(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open  # streak broken: still closed

    def test_half_open_probe_then_close(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 11.0
        breaker.allow()  # admitted as the probe
        with pytest.raises(CircuitOpen):
            breaker.allow()  # probe in flight: others rejected
        breaker.record_success()
        breaker.allow()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 11.0
        breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.is_open
        assert breaker.trips == 2

    def test_snapshot(self):
        breaker = self._breaker()
        breaker.record_failure()
        assert breaker.snapshot() == {"state": "closed", "failures": 1,
                                      "trips": 0}

    def test_trip_probe_admits_the_very_next_request(self):
        """trip_probe opens the breaker with its timeout pre-elapsed:
        request 1 is the half-open probe, the queue behind it is shed,
        probe success snaps the breaker closed -- no reset_timeout
        wait anywhere."""
        breaker = self._breaker()
        breaker.trip_probe()
        assert breaker.is_open
        assert breaker.trips == 1
        breaker.allow()  # immediately admitted as the probe
        assert breaker.state == "half-open"
        with pytest.raises(CircuitOpen):
            breaker.allow()  # the queue behind the probe is shed
        breaker.record_success()
        breaker.allow()
        assert breaker.state == "closed"

    def test_trip_probe_failed_probe_reopens_for_full_timeout(self):
        breaker = self._breaker()
        breaker.trip_probe()
        breaker.allow()  # the probe
        breaker.record_failure()  # coordinator still down
        assert breaker.is_open
        with pytest.raises(CircuitOpen):
            breaker.allow()  # now it waits out reset_timeout
        self.now = 11.0
        breaker.allow()  # next probe after the timeout

    def test_trip_probe_is_idempotent_while_open(self):
        breaker = self._breaker()
        breaker.trip_probe()
        breaker.trip_probe()
        assert breaker.trips == 1


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        root = str(tmp_path)
        cache = DiskCache(root=root)
        key = JobSpec(double, {"x": 1}).key()
        cache.put(key, {"answer": 2})
        json_path, _npz_path = cache._paths(key)
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write('{"truncated": ')  # simulated torn write
        found, value = cache.get(key)
        assert not found and value is None
        assert cache.stats.quarantined == 1
        assert not os.path.exists(json_path)
        assert count_quarantined(root) == 1
        usage = cache_stats(root)
        assert usage.quarantined == 1
        assert usage.entries == 0  # quarantined files are not entries

    def test_corrupt_fault_tears_the_write(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        key = JobSpec(double, {"x": 2}).key()
        faults.install(FaultPlan(specs=[
            FaultSpec(site="cache.store", kind="corrupt", at=1)]))
        cache.put(key, {"answer": 4})
        faults.uninstall()
        found, _value = cache.get(key)
        assert not found
        assert cache.stats.quarantined == 1

    def test_healthy_entries_survive_a_quarantine(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        good = JobSpec(double, {"x": 3}).key()
        bad = JobSpec(double, {"x": 4}).key()
        cache.put(good, 6)
        cache.put(bad, 8)
        bad_json, _ = cache._paths(bad)
        with open(bad_json, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        assert cache.get(bad) == (False, None)
        assert cache.get(good) == (True, 6)


class TestExecutorResilience:
    def test_injected_error_is_retried_to_success(self):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="error", at=1)]))
        result = Executor(retries=2, backoff=0.01).run(
            [JobSpec(double, {"x": 5})])
        outcome = result.outcomes[0]
        assert outcome.value == 10
        assert outcome.record.status == STATUS_OK
        assert outcome.record.attempts == 2

    def test_journal_records_every_outcome(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        specs = [JobSpec(double, {"x": i}) for i in range(3)]
        with JobJournal(path) as journal:
            Executor(journal=journal).run(specs).raise_on_failure()
        state = read_journal(path)
        assert len(state.completed) == 3
        assert not state.interrupted
        assert set(state.completed) == {s.key() for s in specs}

    def test_resume_serves_hits_without_reexecution(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        path = str(tmp_path / "journal.jsonl")
        specs = [JobSpec(double, {"x": i}) for i in range(3)]
        with JobJournal(path) as journal:
            Executor(cache=DiskCache(root=cache_root),
                     journal=journal).run(specs).raise_on_failure()

        obs.enable()
        try:
            with JobJournal(path, resume=True) as journal:
                result = Executor(cache=DiskCache(root=cache_root),
                                  journal=journal).run(specs)
            counters = obs.metrics_snapshot()["counters"]
        finally:
            obs.drain_spans()
            obs.disable()
        assert all(o.record.status == STATUS_HIT for o in result)
        assert counters.get("resilience.resumed_skipped") == 3
        assert "executor.executed" not in counters  # zero re-execution

    def test_interrupted_job_reexecutes_with_note(self, tmp_path):
        spec = JobSpec(double, {"x": 21})
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            journal.start(spec.key(), "victim")  # killed before done
        with JobJournal(path, resume=True) as journal:
            assert journal.was_interrupted(spec.key())
            result = Executor(journal=journal).run([spec])
        outcome = result.outcomes[0]
        assert outcome.value == 42
        assert outcome.record.notes == "resumed-after-interrupt"
        state = read_journal(path)
        assert state.completed[spec.key()] == STATUS_OK
        assert not state.interrupted

    def test_journal_record_is_json_per_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            Executor(journal=journal).run([JobSpec(double, {"x": 1})])
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert [r["event"] for r in records] == ["start", "done"]
        assert all("ts" in r for r in records)
