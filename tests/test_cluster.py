"""Tests for the distributed execution backend (``repro.cluster``).

Covers the contract promised in docs/CLUSTER.md: the length-prefixed
frame protocol with its bit-identical ndarray codec and hostile-length
guard, mutual HMAC authentication (wrong secrets are rejected on both
sides), the backend conformance contract (the same sweep through the
local pool and through a TCP cluster produces bit-identical truth
tables with identical cache-hit accounting), the coordinator's shared
cache tier and cross-client single-flight brokering, worker-death
recovery through both heartbeat loss and kill -9, the fcntl store
lock that makes concurrent same-key cache writes safe across
processes, and the typed ClusterConfigError surfaces in the CLI.
"""

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.cluster import (
    ClusterClient,
    Coordinator,
    TcpClusterBackend,
    Worker,
    protocol,
)
from repro.errors import (
    ClusterAuthError,
    ClusterConfigError,
    ClusterError,
    ReproError,
)
from repro.micromag.experiments import sweep_gate_truth_table
from repro.resilience import FaultPlan, FaultSpec, faults
from repro.runtime import (
    DiskCache,
    Executor,
    JobSpec,
    LocalPoolBackend,
    create_backend,
    prune_cache,
)
from repro.runtime.cache import cache_stats, count_quarantined
from repro.runtime.report import (
    MODE_CACHED,
    MODE_CLUSTER,
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_OK,
)

ROOT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(ROOT_DIR, "src")
N_XOR = 4  # XOR truth-table rows


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    faults.uninstall()
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()


# -- module-level job functions (resolvable by in-process workers) ----------

def add(a, b):
    return a + b


def always_boom():
    raise RuntimeError("boom from the worker")


def returns_unshippable():
    return object()  # no JSON/npz encoding exists


def slow_marker(marker_dir, delay_s=0.8, token="x"):
    """Record one execution as a unique file, then sleep."""
    stamp = f"run-{os.getpid()}-{threading.get_ident()}-{time.monotonic_ns()}"
    with open(os.path.join(marker_dir, stamp), "w") as handle:
        handle.write(token)
    time.sleep(delay_s)
    return {"token": token, "answer": 42}


# -- harness ----------------------------------------------------------------

def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


@contextlib.contextmanager
def running_cluster(cache_root=None, n_workers=1, capacity=2, **kwargs):
    """A live in-process coordinator with ``n_workers`` thread workers."""
    cache = DiskCache(root=cache_root) if cache_root else None
    coordinator = Coordinator(cache=cache, **kwargs).start()
    workers, threads = [], []
    try:
        for index in range(n_workers):
            worker = Worker(coordinator.url, capacity=capacity,
                            name=f"t{index}")
            worker.connect()
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            workers.append(worker)
            threads.append(thread)
        _wait_until(
            lambda: len(coordinator.status()["workers"]) >= n_workers,
            message=f"{n_workers} registered worker(s)")
        yield coordinator
    finally:
        coordinator.stop()
        for worker in workers:
            worker.close()
        for thread in threads:
            thread.join(timeout=2.0)


def assert_values_identical(left, right, path="value"):
    """Bit-identical structural equality (exact floats, exact arrays)."""
    assert type(left) is type(right), f"{path}: {type(left)} vs {type(right)}"
    if isinstance(left, dict):
        assert sorted(left) == sorted(right), path
        for name in left:
            assert_values_identical(left[name], right[name],
                                    f"{path}.{name}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), path
        for index, (a, b) in enumerate(zip(left, right)):
            assert_values_identical(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, path
        assert left.shape == right.shape, path
        assert np.array_equal(left, right, equal_nan=True), path
    else:
        assert left == right or (left != left and right != right), \
            f"{path}: {left!r} != {right!r}"


# -- the wire protocol ------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, {"type": "ping", "n": 7,
                                    "text": "uñicode"})
            frame = protocol.recv_frame(b)
        finally:
            a.close()
            b.close()
        assert frame == {"type": "ping", "n": 7, "text": "uñicode"}

    def test_eof_is_none_not_an_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_hostile_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ClusterError, match="limit"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = json.dumps([1, 2]).encode()
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ClusterError, match="JSON object"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_ndarray_codec_bit_identical(self):
        rng = np.random.default_rng(7)
        value = {"field": rng.normal(size=(5, 3)),
                 "mask": np.array([True, False, True]),
                 "nan": np.array([np.nan, 1.0]),
                 "scalar": 0.1 + 0.2,  # not representable exactly
                 "nested": (1, [2.5, {"deep": np.arange(4)}])}
        decoded = protocol.decode_value(protocol.encode_value(value))
        assert_values_identical(decoded, value)

    def test_parse_url(self):
        assert protocol.parse_url("tcp://10.0.0.2:7421") == ("10.0.0.2",
                                                            7421)
        for bad in ("http://x:1", "tcp://nohost", "tcp://h:notaport",
                    "tcp://h:0", "tcp://:5"):
            with pytest.raises(ClusterConfigError):
                protocol.parse_url(bad)

    def test_mutual_handshake(self):
        a, b = socket.socketpair()
        seen = {}

        def server():
            seen["auth"] = protocol.server_handshake(a, "s3cret")

        thread = threading.Thread(target=server)
        thread.start()
        try:
            protocol.client_handshake(b, "s3cret", role="worker",
                                      extra={"capacity": 3})
        finally:
            thread.join(timeout=5)
            a.close()
            b.close()
        assert seen["auth"]["role"] == "worker"
        assert seen["auth"]["capacity"] == 3

    def test_client_rejects_impostor_server(self):
        """A server that cannot answer the client's nonce gets no work."""
        a, b = socket.socketpair()

        def impostor():
            # Replays the challenge flow but MACs with the wrong
            # secret; like the real coordinator, it closes the socket
            # when the handshake fails.
            try:
                protocol.server_handshake(a, "wrong-secret")
            except ClusterError:
                a.close()

        thread = threading.Thread(target=impostor)
        thread.start()
        try:
            with pytest.raises(ClusterAuthError):
                protocol.client_handshake(b, "s3cret")
        finally:
            thread.join(timeout=5)
            a.close()
            b.close()


class TestAuth:
    def test_worker_with_wrong_secret_rejected(self, tmp_path):
        with running_cluster(n_workers=0, secret="right") as coordinator:
            worker = Worker(coordinator.url, secret="wrong")
            with pytest.raises(ClusterAuthError):
                worker.connect()
            # The coordinator survives the rejected peer.
            client = ClusterClient(coordinator.url,
                                   secret="right").connect()
            try:
                assert client.ping()["type"] == "pong"
            finally:
                client.close()

    def test_client_with_wrong_secret_rejected(self):
        with running_cluster(n_workers=0, secret="right") as coordinator:
            with pytest.raises(ClusterAuthError):
                ClusterClient(coordinator.url, secret="wrong").connect()


# -- backend conformance ----------------------------------------------------

def _run_xor_sweep(backend, cache_dir):
    executor = Executor(workers=2, cache=DiskCache(root=str(cache_dir)),
                        backend=backend)
    sweep = sweep_gate_truth_table("xor", tier="network", executor=executor)
    return sweep, executor


class TestBackendContract:
    """The same sweep through every backend: identical answers,
    identical accounting."""

    def test_truth_tables_bit_identical_across_backends(self, tmp_path):
        local_sweep, _ = _run_xor_sweep(LocalPoolBackend(),
                                        tmp_path / "local")
        with running_cluster(n_workers=2) as coordinator:
            tcp_sweep, _ = _run_xor_sweep(
                TcpClusterBackend(coordinator.url), tmp_path / "tcp")
        assert local_sweep.format_table() == tcp_sweep.format_table()
        assert sorted(local_sweep.cases) == sorted(tcp_sweep.cases)
        for bits, local_case in local_sweep.cases.items():
            assert_values_identical(tcp_sweep.cases[bits], local_case,
                                    path=str(bits))

    @pytest.mark.parametrize("kind", ["local", "tcp"])
    def test_cache_hit_accounting(self, kind, tmp_path):
        """Cold run computes everything, warm run hits everything --
        with the same counters whichever backend executed."""
        with contextlib.ExitStack() as stack:
            if kind == "tcp":
                coordinator = stack.enter_context(
                    running_cluster(n_workers=2))
                make = lambda: TcpClusterBackend(coordinator.url)  # noqa: E731
                cold_mode = MODE_CLUSTER
            else:
                make = LocalPoolBackend
                cold_mode = None  # pool/serial both legitimate
            cold, cold_exec = _run_xor_sweep(make(), tmp_path / "cache")
            warm, warm_exec = _run_xor_sweep(make(), tmp_path / "cache")

        cold_records = list(cold.report.records)
        warm_records = list(warm.report.records)
        assert [r.status for r in cold_records] == [STATUS_OK] * N_XOR
        if cold_mode is not None:
            assert [r.mode for r in cold_records] == [cold_mode] * N_XOR
        assert [r.status for r in warm_records] == [STATUS_HIT] * N_XOR
        assert cold_exec.cache.stats.misses == N_XOR
        assert cold_exec.cache.stats.writes == N_XOR
        assert warm_exec.cache.stats.hits == N_XOR
        assert warm_exec.cache.stats.misses == 0

    def test_non_portable_jobs_run_locally_on_tcp_backend(self):
        with running_cluster(n_workers=1) as coordinator:
            executor = Executor(workers=2, cache=None,
                                backend=TcpClusterBackend(coordinator.url))
            result = executor.run([JobSpec(fn=lambda: 11, label="lam")])
        outcome = result.outcomes[0]
        assert outcome.ok and outcome.value == 11
        assert outcome.record.mode != MODE_CLUSTER


class TestSharedCache:
    def test_second_client_hits_coordinator_cache(self, tmp_path):
        """Two cacheless clients, one computation: the coordinator's
        shared tier answers the second sweep."""
        with running_cluster(cache_root=str(tmp_path / "shared"),
                             n_workers=1) as coordinator:
            backend = TcpClusterBackend(coordinator.url)
            first = Executor(workers=1, cache=None, backend=backend)
            sweep_gate_truth_table("xor", tier="network", executor=first)
            second = Executor(workers=1, cache=None, backend=backend)
            sweep = sweep_gate_truth_table("xor", tier="network",
                                           executor=second)
            records = list(sweep.report.records)
            assert [r.status for r in records] == [STATUS_HIT] * N_XOR
            assert [r.mode for r in records] == [MODE_CACHED] * N_XOR
            assert all(r.notes == "cluster-cache" for r in records)
            assert coordinator.cache_hits == N_XOR
            assert coordinator.completed == N_XOR  # first sweep only


class TestSingleFlight:
    def test_identical_jobs_from_two_clients_execute_once(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        spec = JobSpec(fn="tests.test_cluster:slow_marker",
                       params={"marker_dir": str(marker_dir),
                               "delay_s": 0.8},
                       label="slow")
        results = [None, None]

        def client_run(slot):
            executor = Executor(workers=1, cache=None,
                                backend=TcpClusterBackend(coordinator.url))
            results[slot] = executor.run([spec]).outcomes[0]

        with running_cluster(n_workers=1, capacity=2) as coordinator:
            threads = [threading.Thread(target=client_run, args=(slot,),
                                         daemon=True)
                       for slot in range(2)]
            threads[0].start()
            _wait_until(lambda: coordinator.status()["inflight"] >= 1,
                        message="first submission inflight")
            threads[1].start()
            for thread in threads:
                thread.join(timeout=30)
            assert coordinator.coalesced == 1
        executions = os.listdir(str(marker_dir))
        assert len(executions) == 1  # single-flight: 2 clients, 1 run
        for outcome in results:
            assert outcome is not None and outcome.ok
            assert outcome.value["answer"] == 42


# -- failure handling -------------------------------------------------------

class TestRemoteFailures:
    def test_remote_exception_becomes_failed_record(self):
        with running_cluster(n_workers=1) as coordinator:
            executor = Executor(workers=1, cache=None, retries=1,
                                backend=TcpClusterBackend(coordinator.url))
            outcome = executor.run([JobSpec(
                fn="tests.test_cluster:always_boom",
                label="boom")]).outcomes[0]
            assert coordinator.failed == 1
        assert not outcome.ok
        assert outcome.record.status == STATUS_FAILED
        assert outcome.record.mode == MODE_CLUSTER
        assert "boom from the worker" in outcome.record.error
        assert outcome.record.attempts == 2  # initial try + 1 retry

    def test_unshippable_result_is_a_typed_failure(self):
        with running_cluster(n_workers=1) as coordinator:
            executor = Executor(workers=1, cache=None, retries=0,
                                backend=TcpClusterBackend(coordinator.url))
            outcome = executor.run([JobSpec(
                fn="tests.test_cluster:returns_unshippable",
                label="opaque")]).outcomes[0]
        assert not outcome.ok
        assert "unshippable result" in outcome.record.error

    def test_connection_lost_mid_batch_fails_in_place(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        spec = JobSpec(fn="tests.test_cluster:slow_marker",
                       params={"marker_dir": str(marker_dir),
                               "delay_s": 5.0},
                       label="doomed")
        holder = {}

        def client_run():
            # reconnect_window=0: fail in place immediately instead of
            # redialling the (gone for good) coordinator for 30 s.
            backend = TcpClusterBackend(coordinator.url,
                                        reconnect_window=0.0)
            executor = Executor(workers=1, cache=None, backend=backend)
            holder["outcome"] = executor.run([spec]).outcomes[0]

        with running_cluster(n_workers=1) as coordinator:
            thread = threading.Thread(target=client_run, daemon=True)
            thread.start()
            _wait_until(lambda: coordinator.status()["inflight"] >= 1,
                        message="job inflight")
            coordinator.stop()  # the whole cluster goes away mid-batch
            thread.join(timeout=30)
        outcome = holder["outcome"]
        assert not outcome.ok
        assert outcome.record.status == STATUS_FAILED
        assert "cluster connection lost" in outcome.record.error


class TestWorkerDeath:
    def test_heartbeat_loss_reschedules_to_surviving_worker(self):
        """A registered worker that goes silent (no EOF -- the socket
        stays open) is declared dead by the heartbeat monitor and its
        job reruns elsewhere."""
        with running_cluster(n_workers=0, heartbeat_interval=0.1,
                             heartbeat_timeout=0.5) as coordinator:
            # A zombie worker: authenticates, registers capacity, then
            # never sends another frame.  Keep its socket open.
            zombie = socket.create_connection(coordinator.address)
            protocol.client_handshake(
                zombie, protocol.resolve_secret(None), role="worker",
                extra={"capacity": 1, "name": "zombie"})
            _wait_until(
                lambda: len(coordinator.status()["workers"]) == 1,
                message="zombie registered")

            holder = {}

            def client_run():
                executor = Executor(
                    workers=1, cache=None,
                    backend=TcpClusterBackend(coordinator.url))
                holder["outcome"] = executor.run([JobSpec(
                    fn="tests.test_cluster:add",
                    params={"a": 2, "b": 3}, label="add")]).outcomes[0]

            thread = threading.Thread(target=client_run, daemon=True)
            thread.start()
            # The job lands on the zombie, the monitor times it out,
            # and a healthy late-joining worker picks up the requeue.
            _wait_until(lambda: coordinator.rescheduled >= 1,
                        message="heartbeat-timeout reschedule")
            rescuer = Worker(coordinator.url, capacity=1, name="rescue")
            rescuer.connect()
            rescue_thread = threading.Thread(target=rescuer.run,
                                             daemon=True)
            rescue_thread.start()
            thread.join(timeout=30)
            zombie.close()
            rescuer.close()
            rescue_thread.join(timeout=2)

        outcome = holder["outcome"]
        assert outcome.ok and outcome.value == 5
        assert "rescheduled x1" in (outcome.record.notes or "")

    def test_kill_nine_worker_mid_sweep(self, tmp_path):
        """The acceptance drill: kill -9 one of two real worker
        processes mid-sweep; the sweep still completes exactly."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        # Every remote job dawdles 0.3 s so the SIGKILL lands mid-work.
        env["REPRO_FAULTS"] = FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="slow", at=1,
                      count=1000, delay_s=0.3)]).to_json()

        with running_cluster(n_workers=0) as coordinator:
            procs = [subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", coordinator.url,
                 "--capacity", "2", "--name", f"proc{i}"],
                env=env, cwd=str(tmp_path),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
                for i in range(2)]
            try:
                _wait_until(
                    lambda: len(coordinator.status()["workers"]) == 2,
                    timeout=30, message="2 subprocess workers")

                holder = {}

                def client_run():
                    executor = Executor(
                        workers=2, cache=None,
                        backend=TcpClusterBackend(coordinator.url))
                    holder["sweep"] = sweep_gate_truth_table(
                        "xor", tier="network", executor=executor)

                thread = threading.Thread(target=client_run, daemon=True)
                thread.start()

                def victim_busy():
                    return any(w["inflight"] >= 1
                               for w in coordinator.status()["workers"]
                               if w["name"] == "proc0")

                _wait_until(victim_busy, timeout=30,
                            message="victim worker has inflight jobs")
                os.kill(procs[0].pid, signal.SIGKILL)
                thread.join(timeout=60)
                assert "sweep" in holder, "sweep did not finish"
            finally:
                for proc in procs:
                    proc.kill()
                    proc.wait(timeout=10)

            assert coordinator.rescheduled >= 1
            assert coordinator.failed == 0
        sweep = holder["sweep"]
        records = list(sweep.report.records)
        assert len(records) == N_XOR
        assert all(r.status == STATUS_OK for r in records)
        assert any("rescheduled" in (r.notes or "") for r in records)
        # Exactly the uninterrupted answer, chaos notwithstanding.
        reference = sweep_gate_truth_table(
            "xor", tier="network",
            executor=Executor(workers=1, cache=None))
        assert sweep.format_table() == reference.format_table()


# -- the fcntl store lock ---------------------------------------------------

KEY_A = "a" * 64


class TestDiskCacheStoreLock:
    def test_lock_file_is_not_a_cache_entry(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = DiskCache(root=root)
        cache.put(KEY_A, {"field": np.arange(6.0)})
        lock_files = [name for _, _, names in os.walk(root)
                      for name in names if name.endswith(".lock")]
        assert lock_files == [KEY_A + ".lock"]
        assert cache_stats(root).entries == 1  # the lock is invisible

    def test_prune_removes_lock_files(self, tmp_path):
        root = str(tmp_path / "cache")
        DiskCache(root=root).put(KEY_A, {"field": np.arange(6.0)})
        result = prune_cache(root, max_bytes=0)
        assert result.removed == 1
        leftovers = [name for _, _, names in os.walk(root)
                     for name in names]
        assert leftovers == []

    def test_concurrent_same_key_stores_never_corrupt(self, tmp_path):
        """N processes hammering one key: the flock serializes the
        npz+json sequence, so readers never see a torn pair."""
        root = str(tmp_path / "cache")
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.runtime import DiskCache\n"
            "root, seed = sys.argv[1], int(sys.argv[2])\n"
            "cache = DiskCache(root=root)\n"
            "value = {'field': np.full(4096, float(seed)),\n"
            "         'seed': seed}\n"
            "for _ in range(25):\n"
            "    cache.put('%s', value)\n"
            "    ok, got = cache.get('%s')\n"
            "    assert ok, 'concurrent reader saw a torn entry'\n"
            "    assert got['field'].shape == (4096,)\n" % (KEY_A, KEY_A))
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, root, str(seed)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for seed in range(4)]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
        assert count_quarantined(root) == 0
        ok, value = DiskCache(root=root).get(KEY_A)
        assert ok and value["field"].shape == (4096,)
        assert cache_stats(root).entries == 1


# -- configuration errors and the CLI ---------------------------------------

class TestClusterConfig:
    def test_create_backend_kinds(self):
        assert isinstance(create_backend(None), LocalPoolBackend)
        assert isinstance(create_backend("local"), LocalPoolBackend)
        backend = create_backend("tcp://127.0.0.1:7421")
        assert isinstance(backend, TcpClusterBackend)
        assert backend.describe() == "tcp(tcp://127.0.0.1:7421)"
        with pytest.raises(ClusterConfigError):
            create_backend("redis://127.0.0.1:6379")

    def test_config_errors_are_repro_errors(self):
        assert issubclass(ClusterConfigError, ClusterError)
        assert issubclass(ClusterAuthError, ClusterError)
        assert issubclass(ClusterError, ReproError)

    def test_unreachable_coordinator_is_typed_not_a_traceback(self):
        with pytest.raises(ClusterConfigError, match="cluster start"):
            ClusterClient("tcp://127.0.0.1:1").connect()

    def test_require_ready_names_the_join_command(self):
        with running_cluster(n_workers=0) as coordinator:
            client = ClusterClient(coordinator.url).connect()
            try:
                with pytest.raises(ClusterConfigError,
                                   match="repro worker"):
                    client.require_ready(min_workers=1)
            finally:
                client.close()


class TestClusterCLI:
    def test_sweep_against_dead_coordinator_exits_2(self, tmp_path,
                                                    capsys):
        rc = main(["sweep", "xor", "--tier", "network",
                   "--backend", "tcp://127.0.0.1:1",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot reach cluster coordinator" in err
        assert "Traceback" not in err

    def test_status_requires_url(self, capsys):
        assert main(["cluster", "status"]) == 2
        assert "URL required" in capsys.readouterr().err

    def test_status_json_against_live_coordinator(self, capsys):
        with running_cluster(n_workers=1) as coordinator:
            rc = main(["cluster", "status", coordinator.url, "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["url"] == coordinator.url
        assert len(status["workers"]) == 1
        for field in ("queued", "inflight", "completed", "failed",
                      "rescheduled", "coalesced", "cache_hits"):
            assert field in status

    def test_sweep_through_cli_over_tcp(self, tmp_path, capsys):
        with running_cluster(n_workers=1) as coordinator:
            rc = main(["sweep", "xor", "--tier", "network",
                       "--backend", coordinator.url,
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 worker(s) ready" in out
        assert "XOR FO2 truth-table sweep" in out
        assert "cluster" in out  # the mode column


class TestPreforkConfig:
    def test_prefork_requires_a_fixed_port(self):
        from repro.serve import ServeConfig, run_prefork

        with pytest.raises(ClusterConfigError, match="fixed --port"):
            run_prefork(ServeConfig(port=0), processes=2)
