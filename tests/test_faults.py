"""Fault-injection and TMR tests (the paper's ECC motivation)."""

import pytest

from repro.circuits import Netlist, full_adder_netlist
from repro.circuits.faults import (
    FaultySimulator,
    StuckAtFault,
    enumerate_faults,
    fault_coverage,
    masks_single_module_faults,
    tmr_netlist,
    xor_module,
)
from repro.core.logic import input_patterns, xor


class TestStuckAtFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault("x", 2)

    def test_str(self):
        assert str(StuckAtFault("carry", 1)) == "carry/SA1"

    def test_unknown_net_rejected(self):
        with pytest.raises(ValueError, match="not in the circuit"):
            FaultySimulator(full_adder_netlist(),
                            StuckAtFault("ghost", 0))


class TestFaultySimulator:
    def test_no_fault_matches_golden(self):
        netlist = full_adder_netlist()
        clean = FaultySimulator(netlist)
        for bits in input_patterns(3):
            inputs = dict(zip(("a", "b", "cin"), bits))
            assert clean.run(inputs).outputs \
                == FaultySimulator(netlist, None).run(inputs).outputs

    def test_stuck_output_observed(self):
        netlist = full_adder_netlist()
        simulator = FaultySimulator(netlist, StuckAtFault("sum", 1))
        report = simulator.run({"a": 0, "b": 0, "cin": 0})
        assert report.outputs["sum"] == 1    # forced by the fault
        assert report.outputs["carry"] == 0  # unaffected

    def test_stuck_input_propagates(self):
        netlist = full_adder_netlist()
        simulator = FaultySimulator(netlist, StuckAtFault("a", 1))
        report = simulator.run({"a": 0, "b": 1, "cin": 0})
        # With a forced to 1: sum = 0, carry = 1.
        assert report.outputs == {"sum": 0, "carry": 1}

    def test_internal_net_fault(self):
        netlist = full_adder_netlist()
        simulator = FaultySimulator(netlist, StuckAtFault("ab", 0))
        report = simulator.run({"a": 1, "b": 0, "cin": 0})
        # a xor b forced to 0 -> sum = cin = 0.
        assert report.outputs["sum"] == 0


class TestFaultCoverage:
    def test_enumerates_both_polarities(self):
        netlist = full_adder_netlist()
        faults = enumerate_faults(netlist)
        assert len(faults) == 2 * len(netlist.all_nets())

    def test_exhaustive_vectors_give_high_coverage(self):
        report = fault_coverage(full_adder_netlist())
        # The full adder is fully testable; splitter copies of inputs
        # are all observable.
        assert report.coverage == pytest.approx(1.0)

    def test_single_vector_misses_faults(self):
        report = fault_coverage(full_adder_netlist(),
                                vectors=[{"a": 0, "b": 0, "cin": 0}])
        assert report.coverage < 1.0
        assert report.detected          # but catches some
        assert report.undetected


class TestTmr:
    def _build(self):
        netlist = tmr_netlist(xor_module, n_inputs=2)
        module_outputs = [f"m{i}_y" for i in range(3)]
        return netlist, module_outputs

    def test_functional_equivalence(self):
        netlist, _ = self._build()
        from repro.circuits import CircuitSimulator

        simulator = CircuitSimulator(netlist)
        for bits in input_patterns(2):
            inputs = {"d0": bits[0], "d1": bits[1]}
            assert simulator.run(inputs).outputs["vote"] == xor(*bits)

    def test_masks_any_single_module_fault(self):
        netlist, module_outputs = self._build()
        assert masks_single_module_faults(netlist, module_outputs)

    def test_does_not_mask_voter_output_fault(self):
        netlist, _ = self._build()
        # A fault on the vote net itself is (by definition) unmaskable.
        assert not masks_single_module_faults(netlist, ["vote"])

    def test_two_module_faults_defeat_tmr(self):
        netlist, module_outputs = self._build()
        # Manually clamp two module outputs: majority flips.
        simulator = FaultySimulator(netlist,
                                    StuckAtFault(module_outputs[0], 1))
        # Single fault masked:
        assert simulator.run({"d0": 0, "d1": 0}).outputs["vote"] == 0
        # Simulate a double fault by building on a pre-faulted netlist:
        # clamp m0 and m1 via two sequential simulators is not
        # supported; emulate by checking the voter truth directly.
        from repro.core.logic import majority

        assert majority(1, 1, 0) == 1  # two bad copies outvote the good


class TestXorModule:
    def test_input_arity(self):
        net = Netlist("x")
        with pytest.raises(ValueError):
            xor_module(net, "m", ["a"])
