"""Simulation-driver tests: the micromagnetic workloads that validate
the solver against closed-form physics."""

import math

import numpy as np
import pytest

from repro.constants import GAMMA_LL, MU0
from repro.micromag import (
    Envelope,
    ExcitationSource,
    Mesh,
    Probe,
    Simulation,
    dominant_frequency,
    rectangle,
)
from repro.physics import FECOB


class TestConstruction:
    def test_empty_mask_rejected(self, small_mesh):
        with pytest.raises(ValueError, match="empty"):
            Simulation(small_mesh, FECOB,
                       mask=np.zeros(small_mesh.scalar_shape, dtype=bool),
                       demag="none")

    def test_bad_demag_mode(self, small_mesh):
        with pytest.raises(ValueError, match="demag"):
            Simulation(small_mesh, FECOB, demag="magic")

    def test_coarse_mesh_warns(self):
        mesh = Mesh(cell_size=(20e-9, 20e-9, 1e-9), shape=(4, 4, 1))
        with pytest.warns(UserWarning, match="exchange length"):
            Simulation(mesh, FECOB, demag="none")

    def test_initialize_respects_mask(self, small_mesh):
        mask = np.zeros(small_mesh.scalar_shape, dtype=bool)
        mask[0, :, :4] = True
        sim = Simulation(small_mesh, FECOB, mask=mask, demag="none")
        sim.initialize((0, 0, 1))
        assert np.all(sim.m[2][mask] == 1.0)
        assert np.all(sim.m[:, ~mask] == 0.0)


class TestMacrospinPhysics:
    def test_larmor_frequency(self, single_cell_mesh):
        # Single cell, no demag: f = gamma mu0 (H_ext + H_ani) / 2 pi.
        h_ext = 1e6
        sim = Simulation(single_cell_mesh, FECOB.with_damping(0.0),
                         demag="none", external_field=(0, 0, h_ext))
        sim.initialize((0.05, 0.0, 1.0))
        probe = Probe("c", rectangle(0, 0, 2e-9, 2e-9))
        sim.add_probe(probe)
        sim.run(duration=0.2e-9, dt=2e-14)
        trace = probe.trace
        f_sim = dominant_frequency(trace.values,
                                   trace.times[1] - trace.times[0])
        f_expected = GAMMA_LL * MU0 * (h_ext + FECOB.anisotropy_field) \
            / (2.0 * math.pi)
        assert f_sim == pytest.approx(f_expected, rel=0.01)

    def test_damping_reduces_tilt(self, single_cell_mesh):
        sim = Simulation(single_cell_mesh, FECOB.with_damping(0.1),
                         demag="none", external_field=(0, 0, 1e6))
        sim.initialize((0.3, 0.0, 1.0))
        mz0 = sim.m[2, 0, 0, 0]
        sim.run(duration=0.5e-9, dt=5e-14)
        assert sim.m[2, 0, 0, 0] > mz0

    def test_norm_preserved_through_run(self, single_cell_mesh):
        sim = Simulation(single_cell_mesh, FECOB, demag="none",
                         external_field=(0, 0, 5e5))
        sim.initialize((0.2, 0.1, 1.0))
        sim.run(duration=0.1e-9, dt=2e-14)
        norm = math.sqrt(float(np.sum(sim.m[:, 0, 0, 0] ** 2)))
        assert norm == pytest.approx(1.0, abs=1e-12)

    def test_energy_decreases_with_damping(self, single_cell_mesh):
        sim = Simulation(single_cell_mesh, FECOB.with_damping(0.1),
                         demag="none", external_field=(0, 0, 1e6))
        sim.initialize((0.4, 0.0, 1.0))
        e0 = sim.total_energy()
        sim.run(duration=0.3e-9, dt=5e-14)
        assert sim.total_energy() < e0


class TestExcitationAndProbes:
    def test_source_launches_dynamics(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0, 0, 1))
        source = ExcitationSource(
            region=rectangle(0, 0, 10e-9, 40e-9),
            amplitude=10e3, frequency=12e9,
            envelope=Envelope(start=0.0))
        sim.add_source(source)
        probe = Probe("P", rectangle(25e-9, 0, 40e-9, 40e-9))
        sim.add_probe(probe)
        sim.run(duration=0.3e-9, dt=2e-14, sample_every=5)
        assert probe.trace.envelope_max() > 1e-5

    def test_logic_phase_encoding(self, small_mesh):
        src0 = ExcitationSource.for_logic(
            rectangle(0, 0, 10e-9, 40e-9), 0, 1e3, 10e9)
        src1 = ExcitationSource.for_logic(
            rectangle(0, 0, 10e-9, 40e-9), 1, 1e3, 10e9)
        assert src0.phase == pytest.approx(0.0)
        assert src1.phase == pytest.approx(math.pi)
        assert src0.waveform(0.0) == pytest.approx(-src1.waveform(0.0))

    def test_snapshots_recorded(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="none")
        sim.initialize((0, 0, 1))
        out = sim.run(duration=0.1e-9, dt=1e-13,
                      snapshot_times=[0.05e-9])
        assert len(out["snapshots"]) == 1
        snap = next(iter(out["snapshots"].values()))
        assert snap.shape == small_mesh.field_shape

    def test_clear_sources(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="none")
        sim.add_source(ExcitationSource(
            rectangle(0, 0, 10e-9, 40e-9), 1e3, 10e9))
        sim.clear_sources()
        assert not sim.zeeman.sources


class TestRelax:
    def test_relax_reaches_uniform_state(self, small_mesh):
        # PMA film slightly tilted must relax back to out-of-plane.
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0.3, 0.1, 1.0))
        sim.relax(tolerance=1e-3, max_time=5e-9)
        assert np.all(sim.m[2][sim.mask] > 0.99)

    def test_relax_restores_damping_and_sources(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="none")
        sim.initialize((0.1, 0.0, 1.0))
        source = ExcitationSource(rectangle(0, 0, 10e-9, 40e-9), 1e3, 10e9)
        sim.add_source(source)
        alpha_before = sim.alpha.copy()
        sim.relax(tolerance=1e-2, max_time=1e-9)
        assert np.array_equal(sim.alpha, alpha_before)
        assert sim.zeeman.sources == [source]


class TestAbsorbers:
    def test_absorber_profile_applied(self):
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(40, 8, 1))
        sim = Simulation(mesh, FECOB, demag="none",
                         absorber_width=50e-9, absorber_axes=(0,))
        centre = sim.alpha[0, 4, 20]
        edge = sim.alpha[0, 4, 0]
        assert centre == pytest.approx(FECOB.alpha)
        assert edge > 0.3
