"""Finite-difference mesh tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micromag import Mesh, mesh_for_region, normalize_field


class TestConstruction:
    def test_basic_metrics(self, small_mesh):
        assert small_mesh.n_cells == 64
        assert small_mesh.cell_volume == pytest.approx(25e-27)
        assert small_mesh.extent == pytest.approx((40e-9, 40e-9, 1e-9))
        assert small_mesh.field_shape == (3, 1, 8, 8)
        assert small_mesh.scalar_shape == (1, 8, 8)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            Mesh(cell_size=(0.0, 1e-9, 1e-9), shape=(4, 4, 1))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Mesh(cell_size=(1e-9, 1e-9, 1e-9), shape=(4, 0, 1))

    def test_mesh_for_region_covers(self):
        mesh = mesh_for_region(width=101e-9, height=48e-9,
                               thickness=1e-9, cell=5e-9)
        assert mesh.nx * mesh.dx >= 101e-9
        assert mesh.ny * mesh.dy >= 48e-9
        assert mesh.nz == 1


class TestCoordinates:
    def test_axis_coordinates_centres(self, small_mesh):
        xs = small_mesh.axis_coordinates(0)
        assert xs[0] == pytest.approx(2.5e-9)
        assert xs[-1] == pytest.approx(37.5e-9)
        assert len(xs) == 8

    def test_coordinate_grids_shapes(self, small_mesh):
        z, y, x = small_mesh.coordinate_grids()
        assert z.shape == (1, 1, 1)
        assert y.shape == (1, 8, 1)
        assert x.shape == (1, 1, 8)

    def test_index_of_round_trip(self, small_mesh):
        xs = small_mesh.axis_coordinates(0)
        ys = small_mesh.axis_coordinates(1)
        for ix in (0, 3, 7):
            for iy in (0, 5):
                point = (xs[ix], ys[iy], 0.5e-9)
                assert small_mesh.index_of(point) == (ix, iy, 0)

    def test_index_of_outside_raises(self, small_mesh):
        with pytest.raises(ValueError, match="outside mesh"):
            small_mesh.index_of((1e-6, 0.0, 0.0))

    def test_origin_offsets(self):
        mesh = Mesh(cell_size=(1e-9, 1e-9, 1e-9), shape=(2, 2, 1),
                    origin=(10e-9, 20e-9, 0.0))
        assert mesh.axis_coordinates(0)[0] == pytest.approx(10.5e-9)
        assert mesh.axis_coordinates(1)[0] == pytest.approx(20.5e-9)


class TestFieldConstructors:
    def test_uniform_vector_normalised(self, small_mesh):
        field = small_mesh.uniform_vector((0.0, 0.0, 2.0))
        assert np.allclose(field[2], 1.0)
        assert np.allclose(field[0], 0.0)

    def test_uniform_rejects_zero(self, small_mesh):
        with pytest.raises(ValueError):
            small_mesh.uniform_vector((0.0, 0.0, 0.0))

    def test_zeros(self, small_mesh):
        assert not small_mesh.zeros_vector().any()
        assert not small_mesh.zeros_scalar().any()

    def test_iter_cells_count(self, small_mesh):
        assert sum(1 for _ in small_mesh.iter_cells()) == 64


class TestNormalizeField:
    def test_unit_norm_after(self, small_mesh, rng):
        m = rng.standard_normal(small_mesh.field_shape)
        normalize_field(m)
        norms = np.sqrt(np.sum(m * m, axis=0))
        assert np.allclose(norms, 1.0)

    def test_respects_mask(self, small_mesh, rng):
        m = rng.standard_normal(small_mesh.field_shape)
        mask = np.zeros(small_mesh.scalar_shape, dtype=bool)
        mask[0, :4, :] = True
        normalize_field(m, mask)
        norms = np.sqrt(np.sum(m * m, axis=0))
        assert np.allclose(norms[mask], 1.0)
        assert np.allclose(m[:, ~mask], 0.0)

    def test_zero_cells_stay_zero(self, small_mesh):
        m = small_mesh.zeros_vector()
        m[2, 0, 0, 0] = 1.0
        normalize_field(m)
        assert m[2, 0, 0, 0] == 1.0
        assert np.count_nonzero(m) == 1

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=20)
    def test_scaling_invariance(self, scale):
        mesh = Mesh(cell_size=(1e-9,) * 3, shape=(2, 2, 1))
        m = mesh.uniform_vector((1.0, 1.0, 0.0)) * scale
        normalize_field(m)
        norms = np.sqrt(np.sum(m * m, axis=0))
        assert np.allclose(norms, 1.0)
