"""Physical-constant sanity checks."""

import math

from repro.constants import (
    GAMMA_LL,
    GAMMA_MU0_OVER_2PI,
    G_E,
    HBAR,
    KB,
    MU0,
    MU_B,
    gyromagnetic_ratio,
)


def test_mu0_value():
    assert math.isclose(MU0, 1.25663706e-6, rel_tol=1e-6)


def test_gamma_ll_matches_mumax3():
    # MuMax3 hardcodes 1.7595e11 rad/(T s).
    assert GAMMA_LL == 1.7595e11


def test_gyromagnetic_ratio_free_electron():
    gamma = gyromagnetic_ratio()
    # g mu_B / hbar for the free electron: ~1.760859e11.
    assert math.isclose(gamma, 1.76085963e11, rel_tol=1e-6)
    # MuMax3's rounded value is within 0.1 %.
    assert math.isclose(gamma, GAMMA_LL, rel_tol=1e-3)


def test_gamma_in_frequency_units():
    # gamma mu0 / 2pi should be ~28 GHz per tesla; in A/m units,
    # multiply by mu0 H.  Check 1 T -> ~28.0 GHz.
    f_per_tesla = GAMMA_LL / (2.0 * math.pi)
    assert math.isclose(f_per_tesla, 28.0e9, rel_tol=0.01)
    # And GAMMA_MU0_OVER_2PI converts H in A/m directly.
    h_one_tesla = 1.0 / MU0
    assert math.isclose(GAMMA_MU0_OVER_2PI * h_one_tesla, f_per_tesla,
                        rel_tol=1e-12)


def test_thermal_energy_scale():
    # kT at 300 K ~ 4.14e-21 J (sanity for the thermal-field module).
    assert math.isclose(KB * 300.0, 4.1419e-21, rel_tol=1e-3)


def test_bohr_magneton_relation():
    # mu_B = e hbar / 2 m_e -- consistency via the g-factor identity.
    assert math.isclose(gyromagnetic_ratio(G_E) * HBAR / MU_B, G_E,
                        rel_tol=1e-12)
