"""Tests for the frequency-multiplexed n-bit parallel gate (ref [9])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import ParallelMajorityGate
from repro.core.logic import majority
from repro.physics import FECOB, DispersionRelation, FilmStack


@pytest.fixture(scope="module")
def dispersion():
    return DispersionRelation(FilmStack(material=FECOB, thickness=1e-9))


@pytest.fixture(scope="module")
def gate4(dispersion):
    return ParallelMajorityGate(dispersion, n_channels=4,
                                centre_frequency=17e9,
                                channel_spacing=0.1e9)


class TestConstruction:
    def test_channels_built(self, gate4):
        assert gate4.n_channels == 4
        assert len(gate4.channel_summary()) == 4

    def test_channels_span_centre(self, gate4):
        freqs = [c.frequency for c in gate4.channels]
        assert min(freqs) < 17e9 < max(freqs)
        assert freqs == sorted(freqs)

    def test_wavelengths_decrease_with_frequency(self, gate4):
        lams = [c.wavelength for c in gate4.channels]
        assert lams == sorted(lams, reverse=True)

    def test_margin_budget_enforced(self, dispersion):
        with pytest.raises(ValueError, match="de-tunes"):
            ParallelMajorityGate(dispersion, n_channels=16,
                                 centre_frequency=17e9,
                                 channel_spacing=1.0e9)

    def test_validation(self, dispersion):
        with pytest.raises(ValueError):
            ParallelMajorityGate(dispersion, n_channels=0,
                                 centre_frequency=17e9)
        with pytest.raises(ValueError):
            ParallelMajorityGate(dispersion, n_channels=2,
                                 centre_frequency=17e9,
                                 channel_spacing=0.0)


class TestEvaluation:
    def test_each_channel_computes_majority(self, gate4):
        words = [(0, 1, 1), (1, 0, 0), (1, 1, 1), (0, 0, 1)]
        results = gate4.evaluate(words)
        for bits, outputs in zip(words, results):
            assert outputs["O1"].logic_value == majority(*bits)
            assert outputs["O2"].logic_value == majority(*bits)

    def test_word_count_enforced(self, gate4):
        with pytest.raises(ValueError, match="expected 4"):
            gate4.evaluate([(0, 0, 0)])

    def test_bits_per_channel_enforced(self, gate4):
        with pytest.raises(ValueError, match="3 bits"):
            gate4.evaluate([(0, 0), (0, 0, 0), (0, 0, 0), (0, 0, 0)])

    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_bitwise_majority_word(self, a, b, c):
        # hypothesis cannot inject fixtures; use the module-level cache
        # (the gate is cheap after first construction).
        gate = _cached_gate()
        result, o1, o2 = gate.evaluate_word(a, b, c)
        expected = (a & b) | (a & c) | (b & c)
        assert result == expected
        assert o1 == o2 == expected

    def test_word_range_enforced(self, gate4):
        with pytest.raises(ValueError, match="fit in 4 bits"):
            gate4.evaluate_word(16, 0, 0)

    def test_throughput_gain(self, gate4):
        assert gate4.throughput_gain() == 4.0


_GATE_CACHE = {}


def _cached_gate():
    if "gate" not in _GATE_CACHE:
        disp = DispersionRelation(FilmStack(material=FECOB, thickness=1e-9))
        _GATE_CACHE["gate"] = ParallelMajorityGate(
            disp, n_channels=4, centre_frequency=17e9,
            channel_spacing=0.1e9)
    return _GATE_CACHE["gate"]
