"""Calibration tests: the Table I inversion must be exact."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PAPER_ARRIVAL_MODEL, PAPER_TABLE_I, ArrivalModel, fit_arrival_model
from repro.core.calibration import PAPER_TABLE_II, xor_asymmetry_model
from repro.core.logic import input_patterns, majority


class TestFit:
    def test_paper_fit_reproduces_table_i(self):
        model = PAPER_ARRIVAL_MODEL
        for bits, (o1, _o2) in PAPER_TABLE_I.items():
            assert model.normalized_output(bits) == pytest.approx(
                o1, abs=1e-9), bits

    def test_fitted_parameters(self):
        model = PAPER_ARRIVAL_MODEL
        assert model.overlap_penalty == pytest.approx(0.407)
        e1, e2, e3 = model.efficiencies
        assert e1 == pytest.approx(0.398, abs=1e-3)
        assert e2 == pytest.approx(0.303, abs=1e-3)
        assert e3 == pytest.approx(0.299, abs=1e-3)
        assert e1 + e2 + e3 == pytest.approx(1.0)

    def test_majority_phase_preserved(self):
        # The calibrated gate must still decode correctly: the losing
        # input never flips the interference sign.
        model = PAPER_ARRIVAL_MODEL
        for bits in input_patterns(3):
            assert model.output_phase_is_majority(bits), bits

    @given(st.floats(min_value=0.02, max_value=0.3),
           st.floats(min_value=0.02, max_value=0.3),
           st.floats(min_value=0.02, max_value=0.3))
    @settings(max_examples=50)
    def test_fit_round_trip(self, p1, p2, p3):
        model = fit_arrival_model({1: p1, 2: p2, 3: p3})
        assert model.normalized_output((1, 0, 0)) == pytest.approx(p1)
        assert model.normalized_output((0, 1, 0)) == pytest.approx(p2)
        assert model.normalized_output((0, 0, 1)) == pytest.approx(p3)

    def test_fit_validation(self):
        with pytest.raises(ValueError, match="keys 1, 2, 3"):
            fit_arrival_model({1: 0.1, 2: 0.1})
        with pytest.raises(ValueError, match="positive"):
            fit_arrival_model({1: 0.0, 2: 0.1, 3: 0.1})
        with pytest.raises(ValueError, match="sum above 1"):
            fit_arrival_model({1: 0.5, 2: 0.4, 3: 0.3})


class TestArrivalModel:
    def test_complement_symmetry(self):
        # Table I shows identical values for complementary patterns.
        model = PAPER_ARRIVAL_MODEL
        for bits in input_patterns(3):
            flipped = tuple(1 - b for b in bits)
            assert model.normalized_output(bits) == pytest.approx(
                model.normalized_output(flipped))

    def test_unanimous_normalised_to_one(self):
        model = PAPER_ARRIVAL_MODEL
        assert model.normalized_output((0, 0, 0)) == pytest.approx(1.0)
        assert model.normalized_output((1, 1, 1)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalModel(efficiencies=(0.5, 0.5), overlap_penalty=0.4)
        with pytest.raises(ValueError):
            ArrivalModel(efficiencies=(0.5, 0.3, 0.3), overlap_penalty=0.4)
        with pytest.raises(ValueError):
            ArrivalModel(efficiencies=(0.4, 0.3, 0.3), overlap_penalty=0.0)


class TestTableData:
    def test_table_i_has_all_patterns(self):
        assert set(PAPER_TABLE_I) == set(input_patterns(3))

    def test_table_i_consistent_with_majority(self):
        # Unanimous rows are 1.0; the rest are small (logic via phase).
        for bits, (o1, o2) in PAPER_TABLE_I.items():
            if len(set(bits)) == 1:
                assert o1 == o2 == 1.0
            else:
                assert o1 < 0.2 and o2 < 0.2

    def test_table_ii_xor_contrast(self):
        model = xor_asymmetry_model()
        assert model[(0, 0)] > 0.9
        assert model[(1, 1)] > 0.9
        assert model[(0, 1)] < 0.1
        assert model[(1, 0)] < 0.1
