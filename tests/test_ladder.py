"""Ladder-baseline tests: the [22]/[23] comparison gates."""

import pytest

from repro.core import LadderDimensions, LadderMajorityGate, LadderXorGate
from repro.core.logic import input_patterns, majority, xor


class TestLadderMajority:
    def test_functionally_correct(self):
        assert LadderMajorityGate().is_functionally_correct()

    def test_truth_table_per_output(self):
        gate = LadderMajorityGate()
        for bits, outputs in gate.truth_table().items():
            expected = majority(*bits)
            assert outputs["O1"].logic_value == expected
            assert outputs["O2"].logic_value == expected

    def test_cell_count_is_six(self):
        # Table III: the ladder uses 6 cells (4 excite + 2 detect).
        gate = LadderMajorityGate()
        assert gate.n_excitation_cells == 4
        assert gate.n_detection_cells == 2
        assert gate.n_cells == 6

    def test_requires_unequal_excitation(self):
        gate = LadderMajorityGate()
        assert gate.requires_unequal_excitation
        levels = gate.excitation_levels()
        assert len(levels) == 4
        assert len(set(levels.values())) > 1  # genuinely unequal

    def test_replication_penalty_vs_triangle(self):
        from repro.core import TriangleMajorityGate
        assert LadderMajorityGate().n_excitation_cells \
            > TriangleMajorityGate().n_excitation_cells


class TestLadderXor:
    def test_functionally_correct(self):
        assert LadderXorGate().is_functionally_correct()

    def test_truth_table_per_output(self):
        gate = LadderXorGate()
        for bits, outputs in gate.truth_table().items():
            expected = xor(*bits)
            assert outputs["O1"].logic_value == expected
            assert outputs["O2"].logic_value == expected

    def test_cell_count_is_six(self):
        gate = LadderXorGate()
        assert gate.n_cells == 6

    def test_both_inputs_replicated(self):
        assert LadderXorGate().n_excitation_cells == 4


class TestLadderDimensions:
    def test_defaults_are_lambda_multiples(self):
        dims = LadderDimensions()
        lam = dims.wavelength
        for length in (dims.rung_length, dims.rail_length,
                       dims.output_length):
            ratio = length / lam
            assert ratio == pytest.approx(round(ratio))

    def test_custom_values_respected(self):
        dims = LadderDimensions(rail_length=550e-9)
        assert dims.rail_length == pytest.approx(550e-9)
        assert dims.rung_length > 0  # default filled in
