"""Phase- and threshold-detector tests (Section III readout schemes)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PhaseDetector, ThresholdDetector
from repro.physics import Wave

F = 10e9


class TestPhaseDetector:
    def test_codewords(self):
        det = PhaseDetector()
        assert det.detect(Wave.logic(0, F)).logic_value == 0
        assert det.detect(Wave.logic(1, F)).logic_value == 1

    def test_margin_maximal_at_codewords(self):
        det = PhaseDetector()
        res = det.detect(Wave.logic(0, F))
        assert res.margin == pytest.approx(math.pi / 2)

    def test_margin_zero_at_boundary(self):
        det = PhaseDetector()
        res = det.detect(Wave(1.0, math.pi / 2, F))
        assert res.margin == pytest.approx(0.0, abs=1e-12)

    def test_invert_flag(self):
        det = PhaseDetector(invert=True)
        assert det.detect(Wave.logic(0, F)).logic_value == 1
        assert det.detect(Wave.logic(1, F)).logic_value == 0

    def test_reference_shift(self):
        det = PhaseDetector(reference_phase=1.0)
        assert det.detect(Wave(1.0, 1.0, F)).logic_value == 0
        assert det.detect(Wave(1.0, 1.0 + math.pi, F)).logic_value == 1

    def test_calibrate(self):
        raw = PhaseDetector()
        zero_wave = Wave(0.8, 0.7, F)  # gate's all-zeros output
        calibrated = raw.calibrate(zero_wave)
        assert calibrated.detect(zero_wave).logic_value == 0
        assert calibrated.detect(zero_wave.shifted(math.pi)).logic_value == 1

    @given(st.floats(min_value=-math.pi, max_value=math.pi),
           st.sampled_from([0, 1]))
    @settings(max_examples=50)
    def test_reference_invariance(self, ref, bit):
        # A wave at reference + bit*pi always decodes to bit.
        det = PhaseDetector(reference_phase=ref)
        wave = Wave(1.0, ref + bit * math.pi, F)
        assert det.detect(wave).logic_value == bit

    def test_detect_envelope(self):
        det = PhaseDetector()
        res = det.detect_envelope(complex(-1.0, 0.0), F)
        assert res.logic_value == 1


class TestThresholdDetector:
    def test_xor_convention(self):
        # Above threshold -> 0; below -> 1 (Section III-B).
        det = ThresholdDetector(threshold=0.5, reference_amplitude=1.0)
        assert det.detect(Wave(0.99, 0.0, F)).logic_value == 0
        assert det.detect(Wave(0.01, 0.0, F)).logic_value == 1

    def test_xnor_convention(self):
        det = ThresholdDetector(threshold=0.5, reference_amplitude=1.0,
                                invert=True)
        assert det.detect(Wave(0.99, 0.0, F)).logic_value == 1
        assert det.detect(Wave(0.01, 0.0, F)).logic_value == 0

    def test_normalisation(self):
        det = ThresholdDetector(threshold=0.5, reference_amplitude=2.0)
        assert det.detect(Wave(1.8, 0.0, F)).logic_value == 0
        assert det.detect(Wave(0.4, 0.0, F)).logic_value == 1

    def test_margin(self):
        det = ThresholdDetector(threshold=0.5, reference_amplitude=1.0)
        assert det.detect(Wave(0.8, 0.0, F)).margin == pytest.approx(0.3)
        assert det.detect(Wave(0.45, 0.0, F)).margin == pytest.approx(0.05)

    def test_calibrate(self):
        raw = ThresholdDetector()
        unanimous = Wave(0.27, 0.0, F)  # the gate's (0,0) output
        det = raw.calibrate(unanimous)
        assert det.detect(unanimous).logic_value == 0
        assert det.detect(Wave(0.02, 0.0, F)).logic_value == 1

    def test_calibrate_zero_rejected(self):
        with pytest.raises(ValueError):
            ThresholdDetector().calibrate(Wave(0.0, 0.0, F))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ThresholdDetector(reference_amplitude=0.0)

    @given(st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=50)
    def test_decision_consistent_with_threshold(self, amplitude):
        det = ThresholdDetector(threshold=0.5, reference_amplitude=1.0)
        result = det.detect(Wave(amplitude, 0.0, F))
        assert result.logic_value == (0 if amplitude > 0.5 else 1)
