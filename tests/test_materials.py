"""Material database tests against the paper's parameter set."""

import math

import pytest

from repro.physics import FECOB, PERMALLOY, YIG, Material, get_material, register_material


class TestPaperMaterial:
    def test_fecob_parameters_match_section_iv_a(self):
        assert FECOB.ms == pytest.approx(1100e3)
        assert FECOB.aex == pytest.approx(18.5e-12)
        assert FECOB.alpha == pytest.approx(0.004)
        assert FECOB.ku == pytest.approx(0.832e6)
        assert FECOB.anisotropy_axis == (0.0, 0.0, 1.0)

    def test_exchange_length_about_5nm(self):
        # sqrt(2*18.5e-12 / (mu0 * (1.1e6)^2)) ~ 4.93 nm.
        assert FECOB.exchange_length == pytest.approx(4.93e-9, rel=0.01)

    def test_anisotropy_field_exceeds_ms(self):
        # The film must be perpendicular without external bias for FVSW.
        assert FECOB.anisotropy_field > FECOB.ms
        assert FECOB.is_perpendicular

    def test_effective_pma_field(self):
        # ~104 kA/m of net perpendicular stiffness.
        assert FECOB.effective_pma_field == pytest.approx(103.8e3, rel=0.01)


class TestOtherMaterials:
    def test_yig_not_perpendicular(self):
        assert not YIG.is_perpendicular

    def test_damping_ordering(self):
        # YIG is the low-damping champion.
        assert YIG.alpha < FECOB.alpha < PERMALLOY.alpha


class TestValidation:
    def test_rejects_negative_ms(self):
        with pytest.raises(ValueError):
            Material(name="bad", ms=-1.0, aex=1e-12, alpha=0.01)

    def test_rejects_zero_aex(self):
        with pytest.raises(ValueError):
            Material(name="bad", ms=1e5, aex=0.0, alpha=0.01)

    def test_rejects_negative_damping(self):
        with pytest.raises(ValueError):
            Material(name="bad", ms=1e5, aex=1e-12, alpha=-0.1)

    def test_rejects_non_unit_axis(self):
        with pytest.raises(ValueError):
            Material(name="bad", ms=1e5, aex=1e-12, alpha=0.01,
                     anisotropy_axis=(0.0, 0.0, 2.0))


class TestRegistry:
    def test_lookup_by_name_and_alias(self):
        assert get_material("FeCoB") is FECOB
        assert get_material("fe60co20b20") is FECOB
        assert get_material("py") is PERMALLOY

    def test_unknown_material_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            get_material("unobtainium")

    def test_register_custom(self):
        custom = Material(name="TestAlloy", ms=5e5, aex=1e-11, alpha=0.02)
        register_material(custom, "ta")
        assert get_material("testalloy") is custom
        assert get_material("ta") is custom


class TestCopies:
    def test_with_damping(self):
        relaxed = FECOB.with_damping(0.5)
        assert relaxed.alpha == 0.5
        assert relaxed.ms == FECOB.ms
        assert FECOB.alpha == 0.004  # original untouched

    def test_with_ms(self):
        variant = FECOB.with_ms(1.0e6)
        assert variant.ms == 1.0e6
        assert variant.aex == FECOB.aex
