"""Tests for the experiment-orchestration engine (``repro.runtime``).

Covers the contract promised in docs/RUNTIME.md: deterministic
content-addressed keys (stable across processes, sensitive to any
parameter change), both cache backends with hit/miss accounting, the
executor's timeout -> retry -> failure escalation and serial-fallback
paths, and an end-to-end cached truth-table sweep reproducing the
paper's Table I MAJ3 logic.
"""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.logic import input_patterns, majority
from repro.micromag.experiments import run_gate_case, sweep_gate_truth_table
from repro.runtime import (
    DiskCache,
    Executor,
    JobFailed,
    JobSpec,
    MemoryCache,
    RunReport,
    atomic_write,
    canonical_json,
    prune_cache,
)
from repro.runtime.executor import backoff_delay

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


# -- module-level job functions (portable to worker processes) --------------

def add(a, b):
    return a + b


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


def always_fails():
    raise RuntimeError("intentional failure")


def flaky(marker_path):
    """Fails on the first call, succeeds after (state via the marker)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("first attempt fails")
    return "recovered"


def make_array(n):
    return {"values": np.arange(n, dtype=float), "meta": (n, "cells")}


class TestJobKeys:
    def test_key_is_deterministic(self):
        spec = JobSpec(add, {"a": 1, "b": 2.5})
        assert spec.key() == spec.key()

    def test_callable_and_ref_give_same_key(self):
        by_callable = JobSpec(add, {"a": 1, "b": 2})
        by_ref = JobSpec("tests.test_runtime:add", {"a": 1, "b": 2})
        assert by_callable.key() == by_ref.key()

    def test_key_stable_across_processes(self):
        params = {"gate": "maj3", "bits": [0, 1, 1], "tier": "network"}
        spec = JobSpec("repro.micromag.experiments:run_gate_case", params)
        script = (
            "from repro.runtime import JobSpec;"
            "print(JobSpec('repro.micromag.experiments:run_gate_case',"
            f" {params!r}).key())")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == spec.key()

    def test_key_changes_on_param_change(self):
        base = JobSpec(add, {"a": 1, "b": 2})
        assert base.key() != JobSpec(add, {"a": 1, "b": 3}).key()
        assert base.key() != JobSpec(add, {"a": 1, "b": 2.0000001}).key()

    def test_key_changes_on_salt_change(self):
        spec = JobSpec(add, {"a": 1, "b": 2})
        assert spec.key("v1") != spec.key("v2")

    def test_tuple_and_list_params_are_equivalent(self):
        assert JobSpec(add, {"a": (1, 2), "b": 0}).key() == \
            JobSpec(add, {"a": [1, 2], "b": 0}).key()

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == \
            canonical_json(dict([("a", 2), ("b", 1)]))

    def test_numpy_params_canonicalise(self):
        assert JobSpec(add, {"a": np.int64(3), "b": 0}).key() == \
            JobSpec(add, {"a": 3, "b": 0}).key()

    def test_unsupported_param_rejected(self):
        with pytest.raises(TypeError):
            JobSpec(add, {"a": object(), "b": 0}).key()

    def test_portability_detection(self):
        assert JobSpec(add, {}).portable
        assert JobSpec("tests.test_runtime:add", {}).portable
        assert not JobSpec(lambda: 1, {}).portable

    def test_derived_seed_deterministic_and_distinct(self):
        spec = JobSpec(add, {"a": 1, "b": 2})
        other = JobSpec(add, {"a": 1, "b": 3})
        assert spec.seed() == spec.seed()
        assert spec.seed() != other.seed()
        assert spec.seed(stream=1) != spec.seed(stream=0)


class TestCaches:
    def test_memory_cache_roundtrip_and_stats(self):
        cache = MemoryCache()
        found, _ = cache.get("ab" * 20)
        assert not found and cache.stats.misses == 1
        cache.put("ab" * 20, {"x": 1})
        found, value = cache.get("ab" * 20)
        assert found and value == {"x": 1}
        assert cache.stats.hits == 1 and cache.stats.writes == 1
        assert cache.stats.hit_rate == 0.5

    def test_disk_cache_roundtrip_with_arrays(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        key = "cd" * 20
        value = {"field": np.linspace(0, 1, 7), "bits": (0, 1, 1),
                 "envelope": 0.5 - 0.25j, "nested": {"ok": True}}
        cache.put(key, value)
        # A fresh instance must read what the first one wrote.
        found, loaded = DiskCache(root=str(tmp_path)).get(key)
        assert found
        np.testing.assert_allclose(loaded["field"], value["field"])
        assert loaded["bits"] == (0, 1, 1)
        assert loaded["envelope"] == 0.5 - 0.25j
        assert loaded["nested"] == {"ok": True}

    def test_disk_cache_salt_namespaces(self, tmp_path):
        key = "ef" * 20
        DiskCache(root=str(tmp_path), salt="v1").put(key, 1)
        found, _ = DiskCache(root=str(tmp_path), salt="v2").get(key)
        assert not found

    def test_disk_cache_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        key = "aa" * 20
        cache.put(key, {"x": 1})
        json_path, _ = cache._paths(key)
        with open(json_path, "w") as handle:
            handle.write("{ truncated")
        found, _ = cache.get(key)
        assert not found

    def test_disk_cache_rejects_malformed_key(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(root=str(tmp_path)).put("../escape", 1)


class TestExecutor:
    def test_serial_run_and_cache_hits(self):
        executor = Executor(cache=MemoryCache())
        cold = executor.map(add, [{"a": i, "b": 1} for i in range(4)])
        assert cold.values == [1, 2, 3, 4]
        assert cold.report.cache_hits == 0
        warm = executor.map(add, [{"a": i, "b": 1} for i in range(4)])
        assert warm.values == [1, 2, 3, 4]
        assert warm.report.hit_rate == 1.0
        assert all(o.record.mode == "cached" for o in warm)

    def test_pool_execution(self):
        executor = Executor(workers=2)
        result = executor.map(add, [{"a": i, "b": 10} for i in range(4)])
        assert result.values == [10, 11, 12, 13]
        assert {o.record.mode for o in result} == {"pool"}

    def test_pool_overlaps_sleeps(self):
        # Sleeping jobs overlap even on one core: 4 x 0.3 s on 4
        # workers must beat the 1.2 s serial floor.
        executor = Executor(workers=4)
        t0 = time.perf_counter()
        result = executor.map(sleepy, [{"seconds": 0.3}] * 1
                              + [{"seconds": 0.30001 + i * 1e-5}
                                 for i in range(3)])
        elapsed = time.perf_counter() - t0
        assert all(o.ok for o in result)
        assert elapsed < 1.1

    def test_serial_fallback_for_unportable_jobs(self):
        captured = 5
        executor = Executor(workers=4)
        result = executor.run([JobSpec(lambda x: x + captured, {"x": 1})])
        assert result.values == [6]
        assert result.outcomes[0].record.mode == "serial"

    def test_failure_escalation_records_error(self):
        executor = Executor(retries=2, backoff=0.01)
        result = executor.map(always_fails, [{}])
        record = result.outcomes[0].record
        assert record.status == "failed"
        assert record.attempts == 3
        assert "intentional failure" in record.error
        assert result.values == [None]
        with pytest.raises(JobFailed):
            result.raise_on_failure()

    def test_retry_recovers_flaky_job(self, tmp_path):
        marker = str(tmp_path / "marker")
        executor = Executor(retries=1, backoff=0.01)
        result = executor.map(flaky, [{"marker_path": marker}])
        record = result.outcomes[0].record
        assert result.values == ["recovered"]
        assert record.status == "ok" and record.attempts == 2
        assert record.retries == 1

    def test_timeout_then_retry_then_failure_serial(self):
        executor = Executor(timeout=0.1, retries=1, backoff=0.01)
        result = executor.map(sleepy, [{"seconds": 0.5}])
        record = result.outcomes[0].record
        assert record.status == "failed"
        assert record.attempts == 2
        assert "timeout" in record.error.lower()

    def test_timeout_then_retry_then_failure_pool(self):
        executor = Executor(workers=2, timeout=0.15, retries=1,
                            backoff=0.01)
        result = executor.map(sleepy, [{"seconds": 1.0}])
        record = result.outcomes[0].record
        assert record.status == "failed"
        assert record.attempts == 2
        assert record.mode == "pool"
        assert "timeout" in record.error.lower()

    def test_timeout_within_budget_succeeds(self):
        executor = Executor(timeout=5.0, retries=0)
        result = executor.map(sleepy, [{"seconds": 0.01}])
        assert result.values == [0.01]

    def test_failed_jobs_are_not_cached(self):
        cache = MemoryCache()
        executor = Executor(cache=cache, retries=0, backoff=0.01)
        executor.map(always_fails, [{}])
        assert len(cache) == 0

    def test_array_results_roundtrip_disk_cache(self, tmp_path):
        executor = Executor(cache=DiskCache(root=str(tmp_path)))
        cold = executor.map(make_array, [{"n": 5}])
        warm = executor.map(make_array, [{"n": 5}])
        assert warm.report.hit_rate == 1.0
        np.testing.assert_allclose(warm.values[0]["values"],
                                   cold.values[0]["values"])
        assert warm.values[0]["meta"] == (5, "cells")


class TestRunReport:
    def test_telemetry_aggregates_and_json(self, tmp_path):
        executor = Executor(cache=MemoryCache(), retries=0, backoff=0.01)
        executor.map(add, [{"a": 1, "b": 2}])
        result = executor.run([JobSpec(add, {"a": 1, "b": 2}),
                               JobSpec(add, {"a": 3, "b": 4}),
                               JobSpec(always_fails, {})])
        report = result.report
        assert report.n_jobs == 3
        assert report.cache_hits == 1 and report.cache_misses == 2
        assert report.n_computed == 1 and report.n_failed == 1
        table = report.format_table()
        assert "status" in table and "failed" in table
        path = tmp_path / "report.json"
        report.dump_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["summary"]["n_jobs"] == 3
        assert payload["summary"]["cache_hits"] == 1
        assert len(payload["jobs"]) == 3
        statuses = {job["status"] for job in payload["jobs"]}
        assert statuses == {"hit", "ok", "failed"}


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write(str(target), lambda fh: fh.write(b'{"ok": true}'))
        assert json.loads(target.read_text()) == {"ok": True}

    def test_failure_preserves_target_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("original")

        def exploding_writer(handle):
            handle.write(b"partial garbage")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            atomic_write(str(target), exploding_writer)
        assert target.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.json"]  # no .part leftovers

    def test_dump_json_replaces_atomically(self, tmp_path):
        executor = Executor(cache=MemoryCache())
        report = executor.map(add, [{"a": 1, "b": 2}]).report
        path = tmp_path / "report.json"
        path.write_text("stale contents")
        report.dump_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["summary"]["n_jobs"] == 1
        assert os.listdir(tmp_path) == ["report.json"]

    def test_dump_json_serialization_failure_keeps_old_report(
            self, tmp_path, monkeypatch):
        """Regression: a crash while producing the new report must not
        truncate the previous one on disk."""
        executor = Executor(cache=MemoryCache())
        report = executor.map(add, [{"a": 1, "b": 2}]).report
        path = tmp_path / "report.json"
        report.dump_json(str(path))
        original = path.read_text()

        def exploding(self):
            raise RuntimeError("unserializable")

        monkeypatch.setattr(RunReport, "to_json", exploding)
        with pytest.raises(RuntimeError):
            report.dump_json(str(path))
        assert path.read_text() == original
        assert os.listdir(tmp_path) == ["report.json"]


class TestBackoffPolicy:
    def test_first_retry_is_immediate_base(self):
        assert backoff_delay(0.5, 1) == 0.5

    def test_doubles_per_subsequent_retry(self):
        assert [backoff_delay(0.25, i) for i in range(1, 5)] == \
            [0.25, 0.5, 1.0, 2.0]


class TestCacheConcurrency:
    def test_threaded_put_get_same_key(self, tmp_path):
        """Concurrent writers and readers of one key: readers must see
        either a miss or a complete, internally consistent value --
        never an exception or a torn read."""
        cache = DiskCache(root=str(tmp_path))
        key = "ab" * 20
        value = {"arr": np.arange(64, dtype=float), "n": 64}
        errors = []
        hits = {"n": 0}
        stop = threading.Event()

        def writer():
            try:
                while not stop.is_set():
                    cache.put(key, value)
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    found, loaded = cache.get(key)
                    if found:
                        hits["n"] += 1
                        np.testing.assert_allclose(loaded["arr"],
                                                   value["arr"])
                        assert loaded["n"] == 64
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = ([threading.Thread(target=writer) for _ in range(2)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert hits["n"] > 0


class TestCacheMaintenance:
    @staticmethod
    def _fill(cache, n=4, mtime_step=10.0):
        """Store ``n`` entries and stagger their mtimes oldest-first."""
        keys = [format(i, "02x") * 20 for i in range(n)]
        for i, key in enumerate(keys):
            cache.put(key, {"payload": "x" * 256,
                            "arr": np.arange(16, dtype=float), "i": i})
        base = time.time() - 1000.0
        for i, key in enumerate(keys):
            json_path, _ = cache._paths(key)
            when = base + i * mtime_step
            os.utime(json_path, (when, when))
        return keys

    def test_usage_counts_entries_and_bytes(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        keys = self._fill(cache)
        usage = cache.usage()
        assert usage.entries == len(keys)
        assert usage.total_bytes > 0
        (salt_dir,) = usage.by_salt
        assert usage.by_salt[salt_dir] == (usage.entries, usage.total_bytes)
        payload = usage.as_dict()
        assert payload["entries"] == len(keys)

    def test_prune_to_zero_empties_cache(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        keys = self._fill(cache)
        result = cache.prune(max_bytes=0)
        assert result.scanned == len(keys)
        assert result.removed == len(keys)
        assert result.freed_bytes > 0
        assert cache.usage().entries == 0
        for key in keys:
            found, _ = cache.get(key)
            assert not found

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = DiskCache(root=str(tmp_path))
        keys = self._fill(cache)
        usage = cache.usage()
        # Room for all but one entry: only the single oldest goes.
        result = cache.prune(max_bytes=usage.total_bytes - 1)
        assert result.removed == 1
        assert not cache.get(keys[0])[0]
        for key in keys[1:]:
            assert cache.get(key)[0]

    def test_read_touch_promotes_entry(self, tmp_path):
        """A cache hit bumps the entry's mtime, so eviction order is
        true LRU rather than insertion order."""
        cache = DiskCache(root=str(tmp_path))
        keys = self._fill(cache)
        assert cache.get(keys[0])[0]  # the oldest entry becomes newest
        result = cache.prune(max_bytes=cache.usage().total_bytes - 1)
        assert result.removed == 1
        assert cache.get(keys[0])[0]      # promoted, survived
        assert not cache.get(keys[1])[0]  # now-oldest was evicted

    def test_prune_missing_root_is_a_noop(self, tmp_path):
        result = prune_cache(str(tmp_path / "nowhere"), max_bytes=0)
        assert result.scanned == 0 and result.removed == 0


class TestGateSweep:
    def test_cached_maj3_sweep_reproduces_table_i(self, tmp_path):
        from repro.core import PAPER_TABLE_I

        cache = DiskCache(root=str(tmp_path))
        executor = Executor(cache=cache)
        cold = sweep_gate_truth_table("maj3", tier="network",
                                      executor=executor)
        assert cold.report.n_jobs == 8
        assert cold.report.cache_hits == 0
        for bits in input_patterns(3):
            expected = majority(*bits)
            assert cold.logic_table[bits] == (expected, expected)
            assert cold.normalized_table[bits][0] == \
                pytest.approx(PAPER_TABLE_I[bits][0], abs=1e-6)
        assert cold.all_correct

        # Warm pass: every pattern served from the persistent cache,
        # across a *fresh* executor and cache instance.
        warm = sweep_gate_truth_table(
            "maj3", tier="network",
            executor=Executor(cache=DiskCache(root=str(tmp_path))))
        assert warm.report.hit_rate == 1.0
        assert warm.logic_table == cold.logic_table

    def test_xor_sweep(self):
        sweep = sweep_gate_truth_table("xor", tier="network")
        assert sweep.report.n_jobs == 4
        assert sweep.all_correct
        assert sweep.logic_table[(0, 1)] == (1, 1)
        assert sweep.logic_table[(1, 1)] == (0, 0)

    def test_sweep_formats_table(self):
        sweep = sweep_gate_truth_table("maj3", tier="network")
        text = sweep.format_table()
        assert "MAJ3" in text and "O1 (logic)" in text

    def test_run_gate_case_validates_inputs(self):
        with pytest.raises(ValueError):
            run_gate_case("maj7", [0, 1, 1])
        with pytest.raises(ValueError):
            run_gate_case("maj3", [0, 1])
        with pytest.raises(ValueError):
            run_gate_case("maj3", [0, 1, 1], tier="mumax3")

    def test_sweep_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            sweep_gate_truth_table("nand")
