"""SVG layout-rendering tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import maj3_layout, xor_layout
from repro.viz.svg import layout_to_svg, save_layout_svg


class TestLayoutSvg:
    def test_well_formed_xml(self):
        document = layout_to_svg(maj3_layout())
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_contains_all_terminals(self):
        document = layout_to_svg(maj3_layout())
        for name in ("I1", "I2", "I3", "O1", "O2"):
            assert f">{name}<" in document

    def test_xor_has_no_third_input(self):
        document = layout_to_svg(xor_layout())
        assert ">I3<" not in document
        assert ">I1<" in document

    def test_segment_count(self):
        document = layout_to_svg(xor_layout())
        root = ET.fromstring(document)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        # Background + one per segment (7 for the XOR layout).
        assert len(rects) == 1 + len(xor_layout().segments)

    def test_title_rendered(self):
        document = layout_to_svg(maj3_layout(), title="Figure 3")
        assert "Figure 3" in document

    def test_dimension_legend(self):
        document = layout_to_svg(maj3_layout())
        assert "d2 = 880 nm" in document
        document_xor = layout_to_svg(xor_layout())
        assert "d2 = 40 nm" in document_xor

    def test_save(self, tmp_path):
        path = str(tmp_path / "gate.svg")
        save_layout_svg(maj3_layout(), path, title="MAJ3")
        with open(path) as handle:
            content = handle.read()
        assert content.startswith("<svg")
        assert content.rstrip().endswith("</svg>")
