"""Scalar-wave FDTD tier tests."""

import math

import numpy as np
import pytest

from repro.fdtd import ScalarWaveSimulator, WaveSource, run_steady_state


def _strip_simulator(nx=300, ny=16, dx=5e-9, **kwargs):
    mask = np.ones((ny, nx), dtype=bool)
    defaults = dict(dx=dx, wavelength=55e-9, frequency=10e9,
                    absorber_width=150e-9, absorber_sides=("left", "right"))
    defaults.update(kwargs)
    return ScalarWaveSimulator(mask, **defaults)


class TestConstruction:
    def test_courant_limit(self):
        with pytest.raises(ValueError):
            _strip_simulator(courant=0.9)

    def test_resolution_guard(self):
        with pytest.raises(ValueError, match="under-resolved"):
            _strip_simulator(dx=20e-9)

    def test_empty_mask(self):
        with pytest.raises(ValueError):
            ScalarWaveSimulator(np.zeros((4, 4), dtype=bool), 5e-9,
                                55e-9, 10e9)

    def test_bad_absorber_side(self):
        with pytest.raises(ValueError, match="unknown absorber sides"):
            _strip_simulator(absorber_sides=("north",))

    def test_speed_from_design_point(self):
        sim = _strip_simulator()
        assert sim.speed == pytest.approx(10e9 * 55e-9)

    def test_source_validation(self):
        sim = _strip_simulator()
        with pytest.raises(ValueError):
            WaveSource(mask=np.zeros((4, 4), dtype=bool))
        with pytest.raises(ValueError):
            WaveSource.logic(np.ones((16, 300), dtype=bool), 2)
        with pytest.raises(ValueError):
            sim.add_source(WaveSource(mask=np.ones((2, 2), dtype=bool)))

    def test_point_source_outside_mask(self):
        mask = np.zeros((16, 300), dtype=bool)
        mask[:, :100] = True
        sim = ScalarWaveSimulator(mask, 5e-9, 55e-9, 10e9)
        with pytest.raises(ValueError, match="hits no mask cells"):
            sim.point_source_mask(1400e-9, 40e-9)


class TestPropagation:
    def test_wavelength_in_guide(self):
        # A full-width line source launches the pure fundamental mode,
        # whose guide wavelength equals the design wavelength (up to
        # ~1 % numerical dispersion at 11 cells per wavelength).
        sim = _strip_simulator(nx=400)
        src_mask = np.zeros(sim.mask.shape, dtype=bool)
        src_mask[:, 40:42] = True
        sim.add_source(WaveSource(mask=src_mask))
        env = run_steady_state(sim, settle_periods=40)
        row = env[8, 80:320]
        phase = np.unwrap(np.angle(row))
        slope = np.polyfit(np.arange(len(phase)) * 5e-9, phase, 1)[0]
        measured_lambda = 2 * math.pi / abs(slope)
        assert measured_lambda == pytest.approx(55e-9, rel=0.03)

    def test_field_confined_to_mask(self):
        mask = np.zeros((32, 200), dtype=bool)
        mask[12:20, :] = True
        sim = ScalarWaveSimulator(mask, 5e-9, 55e-9, 10e9,
                                  absorber_width=100e-9,
                                  absorber_sides=("left", "right"))
        src = sim.point_source_mask(100e-9, 80e-9, radius=10e-9)
        sim.add_source(WaveSource.logic(src, 0))
        sim.run_until(30 / 10e9)
        assert np.all(sim.u[~mask] == 0.0)

    def test_absorbers_prevent_reflection_buildup(self):
        sim = _strip_simulator()
        src = sim.point_source_mask(750e-9, 40e-9, radius=10e-9)
        sim.add_source(WaveSource.logic(src, 0))
        env1 = np.abs(run_steady_state(sim, settle_periods=40))
        env2 = np.abs(sim.steady_state_envelope(4))
        # Amplitude must be stationary once in steady state.
        assert np.max(np.abs(env1 - env2)) < 0.1 * env1.max()

    def test_bulk_damping_attenuates(self):
        lossless = _strip_simulator(nx=400)
        lossy = _strip_simulator(nx=400, damping_time=2e-10)
        results = []
        for sim in (lossless, lossy):
            src = sim.point_source_mask(200e-9, 40e-9, radius=10e-9)
            sim.add_source(WaveSource.logic(src, 0))
            env = run_steady_state(sim, settle_periods=40)
            det = sim.point_source_mask(1500e-9, 40e-9, radius=15e-9)
            results.append(abs(sim.region_envelope(det, env)))
        assert results[1] < 0.7 * results[0]


class TestInterference:
    @pytest.mark.parametrize("bit,expect_high", [(0, True), (1, False)])
    def test_two_source_interference(self, bit, expect_high):
        # Sources co-located => in-phase doubles, anti-phase cancels.
        sim = _strip_simulator(nx=400)
        patch = sim.point_source_mask(400e-9, 40e-9, radius=10e-9)
        sim.add_source(WaveSource.logic(patch, 0))
        sim.add_source(WaveSource.logic(patch, bit))
        env = run_steady_state(sim, settle_periods=40)
        det = sim.point_source_mask(1200e-9, 40e-9, radius=15e-9)
        amp = abs(sim.region_envelope(det, env))
        if expect_high:
            assert amp > 0.05
        else:
            assert amp < 1e-6

    def test_logic_phase_flip_at_detector(self):
        # Flipping the source's logic value flips the detected phase.
        phases = []
        for bit in (0, 1):
            sim = _strip_simulator(nx=400)
            src = sim.point_source_mask(300e-9, 40e-9, radius=10e-9)
            sim.add_source(WaveSource.logic(src, bit))
            env = run_steady_state(sim, settle_periods=40)
            det = sim.point_source_mask(1000e-9, 40e-9, radius=15e-9)
            phases.append(np.angle(sim.region_envelope(det, env)))
        diff = abs(math.remainder(phases[1] - phases[0], 2 * math.pi))
        assert diff == pytest.approx(math.pi, abs=0.2)

    def test_region_envelope_validation(self):
        sim = _strip_simulator()
        env = np.zeros(sim.mask.shape, dtype=complex)
        with pytest.raises(ValueError):
            sim.region_envelope(np.zeros(sim.mask.shape, dtype=bool), env)
