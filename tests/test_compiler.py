"""Compiler tests: spec front-end, synthesis, placement, DRC,
characterization, the compile driver, CLI and /v1/compile."""

import json
import random
import urllib.error
import urllib.request
from itertools import product

import pytest

from repro.circuits import CascadeSimulator
from repro.cli import main
from repro.compiler import (
    BUILTIN_SPECS,
    CircuitSpec,
    DesignRules,
    compile_job,
    compile_spec,
    load_spec,
    minimal_sop,
    netlist_from_dict,
    netlist_to_dict,
    place,
    run_drc,
    synthesize,
    verify_functional,
)
from repro.errors import DRCViolation, NetlistError


def _equivalent(spec: CircuitSpec) -> bool:
    """Exhaustive spec-vs-synthesized-netlist agreement."""
    return verify_functional(synthesize(spec), spec)["equivalent"]


class TestSpecFrontEnd:
    def test_load_builtin(self):
        spec = load_spec("maj3")
        assert spec.name == "maj3"
        assert spec.inputs == ("a", "b", "c")

    def test_load_inline_json(self):
        spec = load_spec('{"name": "t", "inputs": ["a", "b"], '
                         '"outputs": {"y": "a & b"}}')
        assert spec.truth_table("y") == (0, 0, 0, 1)

    def test_load_equations(self):
        spec = load_spec("y = a ^ b; z = maj(a, b, c)")
        assert spec.inputs == ("a", "b", "c")
        assert set(spec.outputs) == {"y", "z"}

    def test_load_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BUILTIN_SPECS["xor2"]))
        assert load_spec(str(path)).name == "xor2"

    def test_load_unknown_rejected(self):
        with pytest.raises(ValueError, match="neither a builtin"):
            load_spec("does_not_exist")

    def test_truth_table_definition(self):
        spec = CircuitSpec("tt", ("a", "b"), {"y": "0110"})
        assert spec.truth_table("y") == (0, 1, 1, 0)

    def test_truth_table_length_checked(self):
        with pytest.raises(ValueError, match="expected 8"):
            CircuitSpec("bad", ("a", "b", "c"), {"y": "0110"})

    def test_expression_syntax_error(self):
        with pytest.raises(ValueError):
            CircuitSpec("bad", ("a", "b"), {"y": "a &"})

    def test_unknown_identifier_rejected(self):
        with pytest.raises(ValueError, match="ghost"):
            CircuitSpec("bad", ("a", "b"), {"y": "a & ghost"})

    def test_input_budget_enforced(self):
        names = tuple(f"i{k}" for k in range(7))
        with pytest.raises(ValueError, match="budget"):
            CircuitSpec("big", names, {"y": names[0]})

    def test_output_shadowing_input_rejected(self):
        with pytest.raises(ValueError, match="shadows"):
            CircuitSpec("bad", ("a", "b"), {"a": "a ^ b"})

    def test_from_dict_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            CircuitSpec.from_dict({"inputs": ["a"], "outputs": {"y": "a"},
                                   "bogus": 1})

    def test_maj_operator(self):
        spec = CircuitSpec("m", ("a", "b", "c"), {"y": "maj(a, b, c)"})
        table = spec.truth_table("y")
        for index, bits in enumerate(product((0, 1), repeat=3)):
            assert table[index] == (1 if sum(bits) >= 2 else 0)

    def test_reference_round_trip(self):
        spec = load_spec("full_adder")
        reference = spec.reference()
        out = reference({"a": 1, "b": 1, "cin": 0})
        assert out == {"sum": 0, "carry": 1}

    def test_spec_to_dict_round_trip(self):
        spec = load_spec("parity4")
        again = CircuitSpec.from_dict(spec.to_dict())
        assert again == spec


class TestSynthesis:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SPECS))
    def test_builtin_equivalence(self, name):
        assert _equivalent(load_spec(name))

    def test_every_two_input_function(self):
        # Codes 0 and 15 are the constants, rejected by design (no
        # constant generator on a spin-wave fabric).
        for code in range(1, 15):
            bits = format(code, "04b")
            spec = CircuitSpec("f", ("a", "b"), {"y": bits})
            assert _equivalent(spec), bits

    def test_random_three_and_four_input_functions(self):
        rng = random.Random(20210201)
        for n in (3, 4):
            for _ in range(10):
                bits = "".join(str(rng.randint(0, 1))
                               for _ in range(1 << n))
                spec = CircuitSpec("f", tuple("abcd"[:n]), {"y": bits})
                assert _equivalent(spec), bits

    def test_constant_outputs_rejected(self):
        for bits in ("0000", "1111"):
            spec = CircuitSpec("const", ("a", "b"), {"y": bits})
            with pytest.raises(ValueError, match="constant"):
                synthesize(spec)

    def test_netlist_validates_fanout(self):
        # Shared inputs (full adder uses a, b, cin twice) must come out
        # as explicit SPLITTER2/REPEATER trees -- validate() enforces
        # the FO2 budget, so a legal netlist is the assertion.
        net = synthesize(load_spec("full_adder"))
        net.validate()
        counts = net.count_by_type()
        assert counts.get("SPLITTER2", 0) >= 1

    def test_multi_output_sharing(self):
        # sum and carry both consume a, b, cin; the netlist must stay
        # legal and equivalent with both outputs present.
        spec = load_spec("full_adder")
        net = synthesize(spec)
        assert set(net.primary_outputs) == {"sum", "carry"}
        assert verify_functional(net, spec)["equivalent"]

    def test_minimal_sop_covers_exactly(self):
        table = [0, 1, 1, 1, 0, 0, 0, 1]
        cubes = minimal_sop(table, 3)
        for minterm, want in enumerate(table):
            covered = any(
                all(c == "-" or int(c) == ((minterm >> (3 - 1 - k)) & 1)
                    for k, c in enumerate(cube))
                for cube in cubes)
            assert covered == bool(want), minterm

    def test_cascade_simulator_agrees(self):
        spec = load_spec("and_or")
        table = CascadeSimulator(synthesize(spec)).truth_table()
        reference = spec.reference()
        for bits, out in table.items():
            assert out == reference(dict(zip(spec.inputs, bits))), bits


class TestPlacement:
    def test_placement_stats(self):
        placement = place(synthesize(load_spec("full_adder")))
        stats = placement.stats()
        assert stats["gates"] == len(placement.gates)
        assert stats["area_lambda2"] > 0
        assert stats["wires"] == len(placement.wires)

    def test_columns_follow_levels(self):
        netlist = synthesize(load_spec("full_adder"))
        placement = place(netlist)
        columns = {name: g.column for name, g in placement.gates.items()}
        by_output = {}
        for name, inst in netlist.gates.items():
            for net in inst.outputs:
                if net is not None:
                    by_output[net] = name
        # A gate never sits left of any gate that feeds it.
        for name, inst in netlist.gates.items():
            for net in inst.inputs:
                driver = by_output.get(net)
                if driver is not None:
                    assert columns[driver] < columns[name], (driver, name)

    def test_coordinates_are_half_lambda_grid(self):
        placement = place(synthesize(load_spec("maj3")))
        for gate in placement.gates.values():
            x, y = gate.origin
            assert x == pytest.approx(round(x * 2) / 2)
            assert y == pytest.approx(round(y * 2) / 2)

    def test_to_dict_serializable(self):
        placement = place(synthesize(load_spec("xor2")))
        payload = json.loads(json.dumps(placement.to_dict()))
        assert payload["stats"]["gates"] == 1


class TestDRC:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SPECS))
    def test_builtins_clean(self, name):
        placement = place(synthesize(load_spec(name)))
        report = run_drc(placement, raise_on_violation=False)
        assert report.clean, [str(v) for v in report.violations]

    def test_over_tight_deck_raises_named_pair(self):
        # Placing rows/columns at zero clearance leaves every adjacent
        # gate pair closer than the DRC's gate_clearance floor.
        rules = DesignRules(row_clearance=0.0, col_clearance=0.0)
        placement = place(synthesize(load_spec("full_adder")),
                          rules=rules)
        with pytest.raises(DRCViolation) as excinfo:
            run_drc(placement, raise_on_violation=True)
        violation = excinfo.value
        assert violation.rule.startswith("spacing")
        assert len(violation.offenders) == 2
        for offender in violation.offenders:
            assert offender in placement.gates, violation.offenders
        assert violation.actual < violation.required
        assert violation.report.clean is False

    def test_report_collects_all_violations(self):
        rules = DesignRules(row_clearance=0.0, col_clearance=0.0)
        placement = place(synthesize(load_spec("full_adder")),
                          rules=rules)
        report = run_drc(placement, raise_on_violation=False)
        assert not report.clean
        assert len(report.violations) >= 2
        payload = report.to_dict()
        assert payload["clean"] is False
        assert payload["violations"][0]["rule"]

    def test_violation_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(DRCViolation, ReproError)


class TestCompileDriver:
    def test_compile_builtin_clean(self):
        result = compile_spec("maj3")
        assert result.clean
        assert result.characterization is None
        assert result.placement.stats()["gates"] == 1

    def test_arbitrary_four_input_table(self):
        # ISSUE acceptance: arbitrary truth-table specs up to 4 inputs
        # compile into DRC-clean placements.
        rng = random.Random(7)
        bits = "".join(str(rng.randint(0, 1)) for _ in range(16))
        result = compile_spec({"name": "arb4", "inputs": list("abcd"),
                               "outputs": {"y": bits}})
        assert result.clean
        assert verify_functional(result.netlist,
                                 result.spec)["equivalent"]

    def test_over_tight_rules_raise(self):
        rules = DesignRules(row_clearance=0.0, col_clearance=0.0)
        with pytest.raises(DRCViolation) as excinfo:
            compile_spec("full_adder", rules=rules)
        assert excinfo.value.report.clean is False

    def test_characterize_network_tier(self):
        result = compile_spec("xor2", characterize_circuit=True,
                              tier="network")
        report = result.characterization
        assert report.verified
        assert report.spin_wave["energy_j"] > 0
        assert report.spin_wave["delay_s"] > 0
        assert set(report.cmos) == {"16nm", "7nm"}
        assert 0.0 <= report.error_rates["circuit_error_rate"] <= 1.0
        assert report.error_rates["per_kind"]["xor"]["patterns"] == 4
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["characterization"]["functional"]["equivalent"]

    def test_netlist_round_trip(self):
        spec = load_spec("full_adder")
        net = synthesize(spec)
        again = netlist_from_dict(netlist_to_dict(net))
        assert verify_functional(again, spec)["equivalent"]

    def test_netlist_from_dict_validates(self):
        payload = netlist_to_dict(synthesize(load_spec("maj3")))
        payload["gates"][0]["inputs"] = ["a", "b", "ghost"]
        with pytest.raises(NetlistError):
            netlist_from_dict(payload)

    def test_compile_job_payload(self):
        payload = compile_job(BUILTIN_SPECS["maj3"])
        assert payload["clean"] is True
        assert payload["drc"]["violations"] == []
        json.dumps(payload)  # must be wire-serializable

    def test_compile_job_reports_dirty_as_data(self):
        payload = compile_job(
            BUILTIN_SPECS["full_adder"],
            rules={"row_clearance": 0.0, "col_clearance": 0.0})
        assert payload["clean"] is False
        assert payload["drc"]["violations"]
        assert payload["drc"]["violations"][0]["offenders"]

    def test_bad_spec_raises_value_error(self):
        with pytest.raises(ValueError):
            compile_spec("y = a &")


class TestCompileCli:
    def test_compile_builtin(self, capsys):
        assert main(["compile", "maj3"]) == 0
        out = capsys.readouterr().out
        assert "compiled 'maj3'" in out
        assert "DRC: clean" in out

    def test_compile_equations(self, capsys):
        assert main(["compile", "y = a ^ b ^ c"]) == 0
        assert "DRC: clean" in capsys.readouterr().out

    def test_compile_out_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        assert main(["compile", "xor2", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["drc"]["clean"] is True
        assert payload["placement"]["stats"]["gates"] == 1

    def test_compile_characterize_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["--workers", "1", "compile", "full_adder",
                     "--characterize", "--tier", "network",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "characterization" in out
        payload = json.loads(report_path.read_text())
        assert payload["functional"]["equivalent"] is True
        assert payload["tier"] == "network"

    def test_report_requires_characterize(self, tmp_path, capsys):
        assert main(["compile", "maj3",
                     "--report", str(tmp_path / "r.json")]) == 2
        assert "--characterize" in capsys.readouterr().err

    def test_over_tight_rules_exit_1(self, capsys):
        assert main(["compile", "full_adder",
                     "--row-clearance", "0",
                     "--col-clearance", "0"]) == 1
        assert "violation" in capsys.readouterr().out

    def test_bad_rules_json_exit_2(self, capsys):
        assert main(["compile", "maj3", "--rules", "{nope"]) == 2
        assert "bad --rules JSON" in capsys.readouterr().err

    def test_bad_spec_exit_2(self, capsys):
        assert main(["compile", "no_such_builtin"]) == 2
        assert "neither a builtin" in capsys.readouterr().err


def _post(base, path, payload, timeout=60.0):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestServeCompile:
    def test_compile_endpoint_caches(self, tmp_path):
        from repro.serve import ServeConfig, ServerThread
        from repro.serve.pipeline import SOURCE_CACHED

        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        with ServerThread(config) as server:
            status, body = _post(server.base_url, "/v1/compile",
                                 {"spec": "maj3"})
            assert status == 200
            assert body["result"]["clean"] is True
            assert body["served"]["source"] != SOURCE_CACHED
            status, body = _post(server.base_url, "/v1/compile",
                                 {"spec": "maj3"})
            assert status == 200
            assert body["served"]["source"] == SOURCE_CACHED

    def test_compile_endpoint_validation(self, tmp_path):
        from repro.serve import ServeConfig, ServerThread

        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        with ServerThread(config) as server:
            status, body = _post(server.base_url, "/v1/compile",
                                 {"spec": "y = a &"})
            assert status == 400
            assert "error" in body
            status, body = _post(server.base_url, "/v1/compile", {})
            assert status == 400

    def test_compile_endpoint_dirty_is_data(self, tmp_path):
        from repro.serve import ServeConfig, ServerThread

        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        with ServerThread(config) as server:
            status, body = _post(
                server.base_url, "/v1/compile",
                {"spec": "full_adder",
                 "rules": {"row_clearance": 0.0, "col_clearance": 0.0}})
            assert status == 200
            assert body["result"]["clean"] is False
            violations = body["result"]["drc"]["violations"]
            assert violations and violations[0]["offenders"]
