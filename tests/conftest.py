"""Shared fixtures for the test suite.

The micromagnetic and FDTD fixtures are deliberately tiny -- validation
physics does not need the paper's full device sizes, and the suite must
stay fast enough to run on every change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.micromag import Mesh
from repro.physics import FECOB, DispersionRelation, FilmStack


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(20210948)


@pytest.fixture
def small_mesh():
    """8 x 8 x 1 mesh with 5 nm cells, 1 nm thick (paper film scale)."""
    return Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(8, 8, 1))


@pytest.fixture
def single_cell_mesh():
    """One cubic cell -- macrospin problems."""
    return Mesh(cell_size=(2e-9, 2e-9, 2e-9), shape=(1, 1, 1))


@pytest.fixture
def paper_film():
    """The paper's 1 nm FeCoB film."""
    return FilmStack(material=FECOB, thickness=1e-9)


@pytest.fixture
def paper_dispersion(paper_film):
    """FVSW dispersion of the paper's film."""
    return DispersionRelation(paper_film)
