"""Energy-minimiser tests."""

import numpy as np
import pytest

from repro.micromag import Mesh, Simulation, minimize
from repro.physics import FECOB


class TestMinimize:
    def test_pma_film_minimises_to_out_of_plane(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0.5, 0.2, 1.0))
        result = minimize(sim, torque_tolerance=1e-4)
        assert result.converged
        assert np.all(np.abs(sim.m[2][sim.mask]) > 0.999)

    def test_energy_decreases(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0.5, 0.0, 1.0))
        e0 = sim.total_energy()
        minimize(sim, torque_tolerance=1e-3)
        assert sim.total_energy() < e0

    def test_external_field_selects_branch(self, small_mesh):
        # Strong downward field: minimisation must find m = -z.
        sim = Simulation(small_mesh, FECOB, demag="thin_film",
                         external_field=(0.0, 0.0, -2e6))
        sim.initialize((0.3, 0.0, -1.0))
        result = minimize(sim)
        assert result.converged
        assert np.all(sim.m[2][sim.mask] < -0.999)

    def test_norm_preserved(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0.4, 0.3, 0.8))
        minimize(sim, max_iterations=200)
        norms = np.sqrt(np.sum(sim.m ** 2, axis=0))
        assert np.allclose(norms[sim.mask], 1.0, atol=1e-12)

    def test_agrees_with_relax(self, small_mesh):
        sim_min = Simulation(small_mesh, FECOB, demag="thin_film")
        sim_min.initialize((0.3, 0.1, 1.0))
        minimize(sim_min)
        sim_relax = Simulation(small_mesh, FECOB, demag="thin_film")
        sim_relax.initialize((0.3, 0.1, 1.0))
        sim_relax.relax(tolerance=1e-3, max_time=5e-9)
        assert np.allclose(sim_min.m[2][sim_min.mask],
                           sim_relax.m[2][sim_relax.mask], atol=0.01)

    def test_iteration_cap_reported(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="thin_film")
        sim.initialize((0.7, 0.0, 0.7))
        result = minimize(sim, torque_tolerance=1e-15, max_iterations=3)
        assert not result.converged
        assert result.iterations == 3

    def test_validation(self, small_mesh):
        sim = Simulation(small_mesh, FECOB, demag="none")
        sim.initialize((0, 0, 1))
        with pytest.raises(ValueError):
            minimize(sim, torque_tolerance=0.0)
        with pytest.raises(ValueError):
            minimize(sim, max_iterations=0)
