"""End-to-end chaos drill for crash-safe sweeps.

The scenario from docs/RESILIENCE.md, run for real: a ``python -m repro
sweep`` subprocess is armed with a slow-I/O fault plan via the
``REPRO_FAULTS`` environment variable and killed with SIGKILL (kill -9)
mid-run, after the write-ahead journal shows some patterns completed
but before the sweep finishes.  A second, in-process ``--resume`` run
must then produce the exact truth table of an uninterrupted sweep while
re-executing only the missing patterns -- asserted through the
``executor.*`` / ``cache.*`` / ``resilience.*`` metrics, not just the
stdout.  A third leg corrupts a cached entry on disk and shows the
resume quarantines it and recomputes exactly that one pattern.
"""

import glob
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.cli import main
from repro.resilience import FaultPlan, FaultSpec, faults, read_journal

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
N_PATTERNS = 4  # XOR truth table


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    faults.uninstall()
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()


def _truth_table_block(stdout: str) -> list:
    """The rendered truth-table lines (title until the blank line)."""
    lines = stdout.splitlines()
    for index, line in enumerate(lines):
        if "XOR FO2 truth-table sweep" in line:
            block = []
            for row in lines[index:]:
                if not row.strip():
                    break
                block.append(row.rstrip())
            return block
    raise AssertionError(f"no truth table in output:\n{stdout}")


def _wait_for_completed(journal_path: str, minimum: int,
                        timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = len(read_journal(journal_path).completed)
        if done >= minimum:
            return done
        time.sleep(0.02)
    raise AssertionError(
        f"journal never reached {minimum} completed jobs "
        f"({read_journal(journal_path).summary()})")


def _resume(cache_dir: str, journal_path: str, capsys) -> tuple:
    """Run ``sweep --resume`` in-process; return (stdout, counters)."""
    obs.enable()
    try:
        rc = main(["--workers", "1", "sweep", "xor", "--tier", "network",
                   "--cache-dir", cache_dir, "--journal", journal_path,
                   "--resume"])
        counters = dict(obs.metrics_snapshot()["counters"])
    finally:
        obs.disable()
        obs.drain_spans()
        obs.reset_metrics()
    assert rc == 0
    return capsys.readouterr().out, counters


class TestKillNineResume:
    def test_sweep_survives_kill_and_corruption(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        journal_path = str(tmp_path / "journal.jsonl")

        # Reference: an uninterrupted sweep in a separate cache.
        assert main(["--workers", "1", "sweep", "xor", "--tier", "network",
                     "--cache-dir", str(tmp_path / "reference")]) == 0
        reference_table = _truth_table_block(capsys.readouterr().out)

        # Leg 1: arm a slow-I/O plan so every pattern takes ~0.4 s, then
        # kill -9 the sweep as soon as two patterns are journalled done.
        plan = FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="slow", at=1,
                      count=100, delay_s=0.4)])
        env = dict(os.environ,
                   PYTHONPATH=SRC_DIR, REPRO_FAULTS=plan.to_json())
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--workers", "1",
             "sweep", "xor", "--tier", "network",
             "--cache-dir", cache_dir, "--journal", journal_path],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            _wait_for_completed(journal_path, 2)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL

        state = read_journal(journal_path)
        completed = len(state.completed)
        assert 2 <= completed < N_PATTERNS  # killed mid-sweep

        # Leg 2: --resume finishes the sweep.  Completed patterns are
        # served from cache+journal; only the missing ones execute.
        out, counters = _resume(cache_dir, journal_path, capsys)
        assert _truth_table_block(out) == reference_table
        assert all(row.endswith("yes") for row in reference_table[-4:])
        assert f"resuming from {journal_path}" in out
        assert counters.get("resilience.resumed_skipped", 0) == completed
        assert counters.get("executor.executed", 0) \
            == N_PATTERNS - completed
        assert counters.get("cache.hit", 0) == completed

        # Leg 3: corrupt one cached result on disk.  The next resume
        # must quarantine it and re-execute exactly that pattern --
        # zero re-execution of the healthy three.
        entries = sorted(glob.glob(
            os.path.join(cache_dir, "*", "*", "*.json")))
        assert len(entries) == N_PATTERNS
        with open(entries[0], "w", encoding="utf-8") as handle:
            handle.write('{"oops": ')  # torn write
        out, counters = _resume(cache_dir, journal_path, capsys)
        assert _truth_table_block(out) == reference_table
        assert counters.get("cache.quarantined", 0) == 1
        assert counters.get("executor.executed", 0) == 1
        assert counters.get("resilience.resumed_skipped", 0) \
            == N_PATTERNS - 1
        assert "1 quarantined" in out
        quarantined = glob.glob(os.path.join(
            cache_dir, "quarantine", "**", "*.json"), recursive=True)
        assert len(quarantined) == 1

        # A final resume is fully cached: the journal now covers all
        # four patterns and nothing executes.
        out, counters = _resume(cache_dir, journal_path, capsys)
        assert counters.get("executor.executed", 0) == 0
        assert counters.get("resilience.resumed_skipped", 0) == N_PATTERNS
        assert "4 completed, 0 interrupted" in out
