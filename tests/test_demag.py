"""Demagnetisation tests: Newell tensor identities and field limits."""

import numpy as np
import pytest

from repro.micromag import DemagField, Mesh, ThinFilmDemagField, demag_tensor
from repro.micromag.fields.demag import newell_f, newell_g
from repro.physics import FECOB


class TestNewellFunctions:
    def test_f_even_in_all_arguments(self, rng):
        pts = rng.uniform(0.5, 3.0, size=(10, 3))
        for x, y, z in pts:
            base = newell_f(np.array(x), np.array(y), np.array(z))
            assert newell_f(np.array(-x), np.array(y), np.array(z)) \
                == pytest.approx(float(base))
            assert newell_f(np.array(x), np.array(-y), np.array(z)) \
                == pytest.approx(float(base))

    def test_f_symmetric_in_y_z(self, rng):
        pts = rng.uniform(0.5, 3.0, size=(10, 3))
        for x, y, z in pts:
            a = float(newell_f(np.array(x), np.array(y), np.array(z)))
            b = float(newell_f(np.array(x), np.array(z), np.array(y)))
            assert a == pytest.approx(b)

    def test_g_symmetric_in_x_y(self, rng):
        pts = rng.uniform(0.5, 3.0, size=(10, 3))
        for x, y, z in pts:
            a = float(newell_g(np.array(x), np.array(y), np.array(z)))
            b = float(newell_g(np.array(y), np.array(x), np.array(z)))
            assert a == pytest.approx(b)

    def test_origin_finite(self):
        assert np.isfinite(newell_f(np.array(0.0), np.array(0.0),
                                    np.array(0.0)))
        assert np.isfinite(newell_g(np.array(0.0), np.array(0.0),
                                    np.array(0.0)))


class TestDemagTensor:
    def test_self_term_trace_is_one(self, small_mesh):
        t = demag_tensor(small_mesh)
        trace = t["nxx"][0, 0, 0] + t["nyy"][0, 0, 0] + t["nzz"][0, 0, 0]
        assert trace == pytest.approx(1.0, abs=1e-10)

    def test_cube_self_term_is_isotropic(self):
        mesh = Mesh(cell_size=(2e-9, 2e-9, 2e-9), shape=(2, 2, 1))
        t = demag_tensor(mesh)
        assert t["nxx"][0, 0, 0] == pytest.approx(1.0 / 3.0, abs=1e-10)
        assert t["nyy"][0, 0, 0] == pytest.approx(1.0 / 3.0, abs=1e-10)
        assert t["nzz"][0, 0, 0] == pytest.approx(1.0 / 3.0, abs=1e-10)

    def test_flat_cell_dominated_by_nzz(self, small_mesh):
        # 5 x 5 x 1 nm cell: the out-of-plane factor dominates.
        t = demag_tensor(small_mesh)
        assert t["nzz"][0, 0, 0] > 0.6
        assert t["nxx"][0, 0, 0] < 0.2

    def test_off_diagonal_self_terms_vanish(self, small_mesh):
        t = demag_tensor(small_mesh)
        assert t["nxy"][0, 0, 0] == pytest.approx(0.0, abs=1e-12)
        assert t["nxz"][0, 0, 0] == pytest.approx(0.0, abs=1e-12)
        assert t["nyz"][0, 0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_interaction_decays_with_distance(self, small_mesh):
        t = demag_tensor(small_mesh)
        near = abs(t["nzz"][0, 0, 1])
        far = abs(t["nzz"][0, 0, 5])
        assert near > far


class TestDemagField:
    def test_thin_film_limit_hz_minus_mz(self):
        # A wide, thin film magnetised out of plane: interior field
        # approaches -Ms (N -> diag(0, 0, 1)).
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(40, 40, 1))
        demag = DemagField(mesh, FECOB.ms)
        m = mesh.uniform_vector((0, 0, 1))
        h = demag.field(m)
        centre = h[2, 0, 20, 20]
        assert centre == pytest.approx(-FECOB.ms, rel=0.05)
        assert abs(h[0, 0, 20, 20]) < 0.01 * FECOB.ms

    def test_in_plane_film_feels_little_demag(self):
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(40, 40, 1))
        demag = DemagField(mesh, FECOB.ms)
        m = mesh.uniform_vector((1, 0, 0))
        h = demag.field(m)
        assert abs(h[0, 0, 20, 20]) < 0.05 * FECOB.ms

    def test_energy_prefers_in_plane(self):
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(16, 16, 1))
        demag = DemagField(mesh, FECOB.ms)
        out_of_plane = demag.energy(mesh.uniform_vector((0, 0, 1)))
        in_plane = demag.energy(mesh.uniform_vector((1, 0, 0)))
        assert out_of_plane > in_plane

    def test_field_is_linear(self, small_mesh, rng):
        demag = DemagField(small_mesh, FECOB.ms)
        m1 = rng.standard_normal(small_mesh.field_shape)
        m2 = rng.standard_normal(small_mesh.field_shape)
        h_sum = demag.field(m1 + m2)
        h_parts = demag.field(m1) + demag.field(m2)
        assert np.allclose(h_sum, h_parts, rtol=1e-10, atol=1e-6)

    def test_self_demag_property(self, small_mesh):
        demag = DemagField(small_mesh, FECOB.ms)
        factors = demag.self_demag_tensor
        assert factors.sum() == pytest.approx(1.0, abs=1e-10)

    def test_mask_excludes_vacuum_sources(self, small_mesh):
        mask = np.zeros(small_mesh.scalar_shape, dtype=bool)
        mask[0, :, :4] = True
        demag = DemagField(small_mesh, FECOB.ms, mask)
        m = small_mesh.uniform_vector((0, 0, 1))
        h = demag.field(m)
        # Stray field exists outside, but is weaker than inside.
        assert abs(h[2, 0, 4, 1]) > abs(h[2, 0, 4, 7])


class TestThinFilmDemag:
    def test_local_field(self, small_mesh):
        demag = ThinFilmDemagField(small_mesh, FECOB.ms)
        m = small_mesh.uniform_vector((0, 0, 1))
        h = demag.field(m)
        assert np.allclose(h[2][demag.mask], -FECOB.ms)
        assert np.allclose(h[0], 0.0)

    def test_in_plane_free(self, small_mesh):
        demag = ThinFilmDemagField(small_mesh, FECOB.ms)
        m = small_mesh.uniform_vector((1, 0, 0))
        assert np.allclose(demag.field(m), 0.0)

    def test_energy_density_quadratic_in_mz(self, small_mesh):
        demag = ThinFilmDemagField(small_mesh, FECOB.ms)
        m_full = small_mesh.uniform_vector((0, 0, 1))
        tilted = small_mesh.uniform_vector((0.6, 0.0, 0.8))
        ratio = demag.energy(tilted) / demag.energy(m_full)
        assert ratio == pytest.approx(0.64, rel=1e-9)

    def test_matches_full_solver_for_wide_film(self):
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(48, 48, 1))
        m = mesh.uniform_vector((0, 0, 1))
        full = DemagField(mesh, FECOB.ms).field(m)[2, 0, 24, 24]
        local = ThinFilmDemagField(mesh, FECOB.ms).field(m)[2, 0, 24, 24]
        assert full == pytest.approx(local, rel=0.05)
