"""Attenuation-model tests."""

import math

import pytest

from repro.physics import (
    FECOB,
    LOSSLESS,
    AttenuationModel,
    DispersionRelation,
    FilmStack,
    calibrated_paper_model,
    from_dispersion,
)


class TestModelBasics:
    def test_lossless_passes_everything(self):
        assert LOSSLESS.path_factor(1.0) == 1.0
        assert LOSSLESS.through_junctions(10) == 1.0

    def test_exponential_decay(self):
        model = AttenuationModel(decay_length=1e-6)
        assert model.path_factor(1e-6) == pytest.approx(math.exp(-1.0))
        assert model.path_factor(2e-6) == pytest.approx(math.exp(-2.0))

    def test_junction_loss_compounds(self):
        model = AttenuationModel(junction_loss=0.5)
        assert model.through_junctions(3) == pytest.approx(0.125)

    def test_zero_distance_is_unity(self):
        model = AttenuationModel(decay_length=1e-6)
        assert model.path_factor(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AttenuationModel(decay_length=0.0)
        with pytest.raises(ValueError):
            AttenuationModel(junction_loss=0.0)
        with pytest.raises(ValueError):
            AttenuationModel(junction_loss=1.5)
        with pytest.raises(ValueError):
            AttenuationModel().path_factor(-1.0)
        with pytest.raises(ValueError):
            AttenuationModel().through_junctions(-1)


class TestFromDispersion:
    def test_decay_length_matches_vg_tau(self):
        disp = DispersionRelation(FilmStack(material=FECOB, thickness=1e-9))
        f = 12e9
        model = from_dispersion(disp, f)
        k = disp.wavenumber(f)
        assert model.decay_length == pytest.approx(
            float(disp.attenuation_length(k)), rel=1e-6)

    def test_damping_shortens_decay(self):
        lossy = FilmStack(material=FECOB.with_damping(0.016), thickness=1e-9)
        clean = FilmStack(material=FECOB, thickness=1e-9)
        f = 12e9
        l_lossy = from_dispersion(DispersionRelation(lossy), f).decay_length
        l_clean = from_dispersion(DispersionRelation(clean), f).decay_length
        assert l_clean / l_lossy == pytest.approx(4.0, rel=0.01)


class TestCalibratedModel:
    def test_default_junction_loss(self):
        model = calibrated_paper_model()
        assert 0.0 < model.junction_loss < 1.0
        assert math.isinf(model.decay_length)

    def test_override(self):
        model = calibrated_paper_model(junction_loss=0.8)
        assert model.junction_loss == pytest.approx(0.8)
