"""High-availability tests for the cluster (``docs/CLUSTER.md``).

Covers the failover story added on top of the base cluster contract:
chunked result streaming (payloads above the 256 MiB frame cap cross
the wire digest-verified), optional TLS on every cluster socket (with
typed errors for partial flag sets), coordinator journal replay
(interrupted jobs requeue, completed keys answer from the shared
cache), transparent client/worker reconnection across a coordinator
restart on the same port, and the full ``cluster supervise`` drill:
kill -9 the coordinator mid-batch and the sweep still completes with
``failed == 0`` and no client-visible error.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    ClusterClient,
    Coordinator,
    TcpClusterBackend,
    TlsConfig,
    Worker,
    protocol,
    tls_config,
)
from repro.errors import ClusterConfigError, ClusterError
from repro.resilience import JobJournal, ProcessSupervisor, faults
from repro.resilience.journal import read_journal
from repro.runtime import DiskCache, Executor, JobSpec

from tests.test_cluster import (
    _wait_until,
    assert_values_identical,
    slow_marker,  # noqa: F401  (re-exported as a job ref target)
)

ROOT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(ROOT_DIR, "src")


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    faults.uninstall()
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()


# -- module-level job functions (resolvable by in-process workers) ----------

def mul2(x):
    return x * 2


def big_blob(n):
    """A result whose encoded frame is deliberately large."""
    return {"n": n, "field": np.arange(n, dtype=np.float64)}


# -- chunked result streaming ------------------------------------------------

def _pipe():
    left, right = socket.socketpair()
    return left, right


def _threaded_roundtrip(message):
    """send_message in a thread (socketpair buffers are finite),
    recv_message here."""
    left, right = _pipe()
    try:
        box = {}

        def _send():
            box["sent"] = protocol.send_message(left, message)

        sender = threading.Thread(target=_send, daemon=True)
        sender.start()
        received = protocol.recv_message(right)
        sender.join(timeout=60)
        assert not sender.is_alive(), "sender stalled"
        return received
    finally:
        left.close()
        right.close()


class TestChunkedStreaming:
    def test_small_message_is_a_single_frame(self):
        left, right = _pipe()
        try:
            protocol.send_message(left, {"type": "pong", "x": 1})
            # A plain frame: recv_frame sees the message itself, not a
            # result_chunk header.
            frame = protocol.recv_frame(right)
            assert frame == {"type": "pong", "x": 1}
        finally:
            left.close()
            right.close()

    def test_large_message_round_trips_in_chunks(self, monkeypatch):
        monkeypatch.setattr(protocol, "CHUNK_THRESHOLD", 256)
        monkeypatch.setattr(protocol, "CHUNK_BYTES", 64)
        message = {"type": "outcome", "blob": "y" * 5000,
                   "tail": [1, 2, 3]}
        assert _threaded_roundtrip(message) == message

    def test_chunk_header_announces_the_stream(self, monkeypatch):
        monkeypatch.setattr(protocol, "CHUNK_THRESHOLD", 64)
        left, right = _pipe()
        try:
            payload = {"blob": "z" * 500}
            protocol.send_message(left, payload)
            header = protocol.recv_frame(right)
            assert header["type"] == "result_chunk"
            encoded = json.dumps(payload, separators=(",", ":"))
            assert header["bytes"] == len(encoded)
            assert header["chunks"] >= 1
            assert len(header["sha256"]) == 64
        finally:
            left.close()
            right.close()

    def test_digest_mismatch_drops_the_connection(self):
        left, right = _pipe()
        try:
            protocol.send_frame(left, {
                "type": "result_chunk", "bytes": 4, "chunks": 1,
                "chunk_bytes": 4, "sha256": "0" * 64})
            left.sendall(protocol._LENGTH.pack(4) + b'{"a"')
            with pytest.raises(ClusterError, match="digest"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_short_stream_rejected(self):
        left, right = _pipe()
        try:
            protocol.send_frame(left, {
                "type": "result_chunk", "bytes": 100, "chunks": 1,
                "chunk_bytes": 100, "sha256": "0" * 64})
            left.sendall(protocol._LENGTH.pack(4) + b"abcd")
            with pytest.raises(ClusterError, match="ended at"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_hostile_totals_rejected(self):
        for header in (
                {"type": "result_chunk",
                 "bytes": protocol.MAX_STREAM_BYTES + 1,
                 "chunks": 1, "sha256": "0" * 64},
                {"type": "result_chunk", "bytes": 10, "chunks": 99,
                 "sha256": "0" * 64},
                {"type": "result_chunk", "bytes": -1, "chunks": 1,
                 "sha256": "0" * 64}):
            left, right = _pipe()
            try:
                protocol.send_frame(left, header)
                with pytest.raises(ClusterError):
                    protocol.recv_message(right)
            finally:
                left.close()
                right.close()

    def test_eof_mid_stream_reads_as_peer_gone(self):
        left, right = _pipe()
        try:
            protocol.send_frame(left, {
                "type": "result_chunk", "bytes": 100, "chunks": 2,
                "chunk_bytes": 50, "sha256": "0" * 64})
            left.sendall(protocol._LENGTH.pack(50) + b"x" * 50)
            left.close()
            assert protocol.recv_message(right) is None
        finally:
            right.close()

    def test_result_beyond_frame_cap_round_trips(self):
        """The acceptance drill: a message *larger than the 256 MiB
        frame cap* -- impossible to send as one frame -- crosses the
        wire chunked and digest-verified, bit-identically."""
        blob = "x" * (protocol.MAX_FRAME_BYTES + 8 * 1024 * 1024)
        message = {"type": "outcome", "blob": blob}
        with pytest.raises(ClusterError, match="exceeds"):
            # The un-chunked path really would refuse it.
            protocol.send_frame(socket.socketpair()[0], message)
        received = _threaded_roundtrip(message)
        assert received["type"] == "outcome"
        assert received["blob"] == blob

    def test_cluster_job_with_huge_result_streams(self, monkeypatch,
                                                  tmp_path):
        """End to end: worker -> coordinator -> client, result above
        the (patched) chunk threshold on both hops."""
        monkeypatch.setattr(protocol, "CHUNK_THRESHOLD", 4096)
        coordinator = Coordinator().start()
        worker = Worker(coordinator.url, capacity=1, name="hw")
        worker.connect()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            _wait_until(lambda: coordinator.status()["workers"],
                        message="worker registered")
            executor = Executor(workers=1, cache=None,
                                backend=TcpClusterBackend(coordinator.url))
            spec = JobSpec(fn="tests.test_cluster_ha:big_blob",
                           params={"n": 4096}, label="big")
            outcome = executor.run([spec]).outcomes[0]
            assert outcome.ok, outcome.record.error
            assert_values_identical(outcome.value, big_blob(4096))
        finally:
            coordinator.stop()
            worker.close()
            thread.join(timeout=2)


# -- TLS ---------------------------------------------------------------------

def _make_cert(tmp_path):
    """Self-signed localhost cert via the openssl CLI; None if absent."""
    openssl = shutil.which("openssl")
    if not openssl:
        return None
    cert = str(tmp_path / "cert.pem")
    key = str(tmp_path / "key.pem")
    proc = subprocess.run(
        [openssl, "req", "-x509", "-newkey", "rsa:2048", "-nodes",
         "-keyout", key, "-out", cert, "-days", "1", "-subj",
         "/CN=localhost"],
        capture_output=True)
    if proc.returncode != 0:
        return None
    return TlsConfig(cert=cert, key=key)


class TestTls:
    def test_partial_flag_pair_is_a_typed_error(self, tmp_path):
        cert = tmp_path / "cert.pem"
        cert.write_text("not really a cert")
        with pytest.raises(ClusterConfigError, match="together"):
            tls_config(cert=str(cert), key=None)
        with pytest.raises(ClusterConfigError, match="together"):
            tls_config(cert=None, key=str(cert))

    def test_missing_pem_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(ClusterConfigError, match="not found"):
            tls_config(cert=str(tmp_path / "no.pem"),
                       key=str(tmp_path / "no.pem"))

    def test_no_flags_means_no_tls(self):
        assert tls_config() is None

    def test_garbage_pem_is_a_typed_error(self, tmp_path):
        cert = tmp_path / "cert.pem"
        cert.write_text("junk")
        config = tls_config(cert=str(cert), key=str(cert))
        with pytest.raises(ClusterConfigError, match="bad TLS"):
            protocol.server_tls_context(config)

    def test_server_context_requires_cert(self):
        with pytest.raises(ClusterConfigError, match="tls-cert"):
            protocol.server_tls_context(TlsConfig())

    def test_cluster_round_trip_over_tls(self, tmp_path):
        tls = _make_cert(tmp_path)
        if tls is None:
            pytest.skip("no usable openssl CLI for cert generation")
        coordinator = Coordinator(tls=tls).start()
        worker = Worker(coordinator.url, capacity=1, name="tlsw",
                        tls=tls)
        worker.connect()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            _wait_until(lambda: coordinator.status()["workers"],
                        message="worker registered over TLS")
            executor = Executor(
                workers=1, cache=None,
                backend=TcpClusterBackend(coordinator.url, tls=tls))
            spec = JobSpec(fn="tests.test_cluster_ha:mul2",
                           params={"x": 21}, label="tls-job")
            outcome = executor.run([spec]).outcomes[0]
            assert outcome.ok and outcome.value == 42
            # A plaintext client cannot talk to a TLS coordinator --
            # and fails with a clean typed error, not a hang.
            with pytest.raises((ClusterError, OSError)):
                ClusterClient(coordinator.url).connect()
        finally:
            coordinator.stop()
            worker.close()
            thread.join(timeout=2)


KEY_INT = "ab" * 16     # DiskCache keys are 8-64 hex chars
KEY_DONE = "cd" * 16
KEY_CACHED = "ef" * 16


# -- journal replay ----------------------------------------------------------

class TestJournalReplay:
    def test_interrupted_job_requeues_and_completes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            journal.start(KEY_INT, "lost-job",
                          ref="tests.test_cluster_ha:mul2",
                          params={"x": 10}, timeout=None, retries=2)
            journal.start(KEY_DONE, "finished-job",
                          ref="tests.test_cluster_ha:mul2",
                          params={"x": 11})
            journal.done(KEY_DONE, "ok", attempts=1)

        cache = DiskCache(root=str(tmp_path / "cache"))
        journal = JobJournal(path, resume=True)
        coordinator = Coordinator(cache=cache, journal=journal).start()
        try:
            assert coordinator.journal_replayed == {
                "completed": 1, "interrupted": 1}
            status = coordinator.status()
            assert status["queue_depth"] == 1
            assert status["journal_replayed"]["interrupted"] == 1

            # The requeued job runs as soon as a worker joins -- no
            # client involved.
            worker = Worker(coordinator.url, capacity=1, name="rw")
            worker.connect()
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                _wait_until(
                    lambda: coordinator.status()["completed"] >= 1,
                    message="replayed job completion")
                found, value = cache.get(KEY_INT)
                assert found and value == 20
                # ... and the journal now records it as done.
                state = read_journal(path)
                assert KEY_INT in state.completed
            finally:
                worker.close()
                thread.join(timeout=2)
        finally:
            coordinator.stop()
            journal.close()

    def test_cache_backed_key_heals_without_recompute(self, tmp_path):
        """Killed between the cache write and the done record: replay
        writes the missing done record instead of requeueing."""
        path = str(tmp_path / "journal.jsonl")
        cache = DiskCache(root=str(tmp_path / "cache"))
        cache.put(KEY_CACHED, 77)
        with JobJournal(path) as journal:
            journal.start(KEY_CACHED, "raced",
                          ref="tests.test_cluster_ha:mul2",
                          params={"x": 7})

        journal = JobJournal(path, resume=True)
        coordinator = Coordinator(cache=cache, journal=journal).start()
        try:
            assert coordinator.journal_replayed == {
                "completed": 1, "interrupted": 0}
            assert coordinator.status()["queue_depth"] == 0
            assert KEY_CACHED in read_journal(path).completed
        finally:
            coordinator.stop()
            journal.close()

    def test_pre_ha_journal_without_descriptors_is_skipped(self,
                                                           tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path) as journal:
            journal.start("old-key", "no-ref")  # pre-HA record
        journal = JobJournal(path, resume=True)
        coordinator = Coordinator(journal=journal).start()
        try:
            assert coordinator.journal_replayed == {
                "completed": 0, "interrupted": 0}
        finally:
            coordinator.stop()
            journal.close()


# -- coordinator failover (in-process) ---------------------------------------

class TestCoordinatorFailover:
    def test_client_and_worker_ride_through_a_restart(self, tmp_path):
        """Kill the coordinator mid-batch, restart it on the same port
        with the same cache + journal: the worker redials, the client
        resubmits, every job completes, no error surfaces."""
        journal_path = str(tmp_path / "journal.jsonl")
        cache_root = str(tmp_path / "shared")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()

        journal1 = JobJournal(journal_path, resume=True)
        first = Coordinator(cache=DiskCache(root=cache_root),
                            journal=journal1).start()
        port = first.address[1]

        worker = Worker(first.url, capacity=1, name="fw",
                        reconnect_window=30.0, dial_backoff=0.05)
        worker.connect()
        worker_thread = threading.Thread(target=worker.run_forever,
                                         daemon=True)
        worker_thread.start()
        _wait_until(lambda: first.status()["workers"],
                    message="worker registered")

        specs = [JobSpec(fn="tests.test_cluster_ha:slow_marker",
                         params={"marker_dir": str(marker_dir),
                                 "delay_s": 1.0, "token": f"t{i}"},
                         label=f"job{i}")
                 for i in range(3)]
        holder = {}

        def client_run():
            backend = TcpClusterBackend(
                first.url, reconnect_window=30.0, reconnect_backoff=0.05)
            executor = Executor(workers=1, cache=None, backend=backend)
            holder["result"] = executor.run(specs)

        client_thread = threading.Thread(target=client_run, daemon=True)
        client_thread.start()
        second = None
        journal2 = None
        try:
            _wait_until(lambda: first.status()["inflight"] >= 1,
                        message="a job inflight before the kill")
            first.kill()  # abrupt: no shutdown frames, like kill -9
            journal1.close()

            journal2 = JobJournal(journal_path, resume=True)
            second = Coordinator(port=port,
                                 cache=DiskCache(root=cache_root),
                                 journal=journal2).start()
            assert second.journal_replayed["interrupted"] >= 1

            client_thread.join(timeout=60)
            assert not client_thread.is_alive(), "client never finished"
            result = holder["result"]
            assert all(o.ok for o in result.outcomes), [
                o.record.error for o in result.outcomes if not o.ok]
            assert result.report.n_failed == 0
            for i, outcome in enumerate(result.outcomes):
                assert outcome.value == {"token": f"t{i}", "answer": 42}
            assert worker.reconnects >= 1
        finally:
            worker.stop()
            worker_thread.join(timeout=5)
            if second is not None:
                second.stop()
            if journal2 is not None:
                journal2.close()


# -- process supervisor ------------------------------------------------------

class TestProcessSupervisor:
    def test_clean_children_exit_zero(self):
        supervisor = ProcessSupervisor(lambda slot: 0, processes=2,
                                       max_restarts=0)
        assert supervisor.run() == 0

    def test_crash_loop_exhausts_budget_with_nonzero_exit(self):
        supervisor = ProcessSupervisor(lambda slot: 3, processes=1,
                                       max_restarts=2,
                                       backoff_base=0.01,
                                       backoff_cap=0.02)
        assert supervisor.run() != 0

    def test_crashing_child_is_restarted(self, tmp_path):
        stamp_dir = tmp_path / "stamps"
        stamp_dir.mkdir()

        def child(slot):
            # Each incarnation leaves a stamp; crash until the third.
            n = len(os.listdir(str(stamp_dir)))
            (stamp_dir / f"run-{n}").write_text("x")
            return 1 if n < 2 else 0

        supervisor = ProcessSupervisor(child, processes=1,
                                       max_restarts=5,
                                       backoff_base=0.01,
                                       backoff_cap=0.02)
        supervisor.run()
        assert len(os.listdir(str(stamp_dir))) == 3


# -- the full supervised kill -9 drill ---------------------------------------

def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _read_pid(path):
    try:
        with open(path) as handle:
            return int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return 0


class TestSupervisedKill9:
    def test_kill9_mid_batch_heals_without_client_errors(self, tmp_path):
        """The headline drill from docs/CLUSTER.md: kill -9 the
        supervised coordinator while a batch is in flight.  The
        supervisor restarts it, the journal replays, the worker and
        client reconnect, and the batch finishes with failed == 0."""
        port = _free_port()
        url = f"tcp://127.0.0.1:{port}"
        pid_file = str(tmp_path / "coordinator.pid")
        journal_path = str(tmp_path / "journal.jsonl")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + ROOT_DIR

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cluster", "supervise",
             "--host", "127.0.0.1", "--port", str(port),
             "--cache-dir", str(tmp_path / "cache"),
             "--journal", journal_path, "--pid-file", pid_file],
            env=env, cwd=ROOT_DIR,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        worker = None
        worker_thread = None
        try:
            _wait_until(lambda: _read_pid(pid_file) > 0, timeout=30,
                        message="supervised coordinator pid file")

            def _reachable():
                try:
                    with ClusterClient(url) as client:
                        return client.ping().get("type") == "pong"
                except (ClusterError, OSError):
                    return False

            _wait_until(_reachable, timeout=30,
                        message="supervised coordinator reachable")

            worker = Worker(url, capacity=1, name="dw",
                            reconnect_window=30.0, dial_backoff=0.05)
            worker.connect()
            worker_thread = threading.Thread(target=worker.run_forever,
                                             daemon=True)
            worker_thread.start()

            specs = [JobSpec(fn="tests.test_cluster_ha:slow_marker",
                             params={"marker_dir": str(marker_dir),
                                     "delay_s": 1.0, "token": f"k{i}"},
                             label=f"drill{i}")
                     for i in range(3)]
            holder = {}

            def client_run():
                backend = TcpClusterBackend(url, reconnect_window=30.0,
                                            reconnect_backoff=0.05)
                executor = Executor(workers=1, cache=None,
                                    backend=backend)
                holder["result"] = executor.run(specs)

            client_thread = threading.Thread(target=client_run,
                                             daemon=True)
            client_thread.start()
            _wait_until(lambda: os.listdir(str(marker_dir)), timeout=30,
                        message="a job executing before the kill")

            pid = _read_pid(pid_file)
            assert pid > 0
            os.kill(pid, signal.SIGKILL)

            _wait_until(
                lambda: _read_pid(pid_file) not in (0, pid), timeout=30,
                message="supervisor respawned the coordinator")
            client_thread.join(timeout=90)
            assert not client_thread.is_alive(), "client never finished"
            result = holder["result"]
            assert all(o.ok for o in result.outcomes), [
                o.record.error for o in result.outcomes if not o.ok]
            assert result.report.n_failed == 0
            for i, outcome in enumerate(result.outcomes):
                assert outcome.value == {"token": f"k{i}", "answer": 42}

            # The restarted incarnation reports its replay in status.
            with ClusterClient(url) as client:
                status = client.status()
            assert "journal_replayed" in status
            assert "queue_depth" in status
            assert status["uptime_s"] >= 0
        finally:
            if worker is not None:
                worker.stop()
            if worker_thread is not None:
                worker_thread.join(timeout=5)
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=15)
