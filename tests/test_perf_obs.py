"""Tests for the continuous-performance layer: thread-safe metrics,
bucketed histogram quantiles, Prometheus edge cases, the flight
recorder, solver-phase profiling helpers, resource probes, and the
bench-trajectory regression gate (store, compare, CLI)."""

import json
import sys
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.obs import flight, prometheus, trajectory
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.runtime.report import (
    MODE_POOL, STATUS_OK, JobRecord, RunReport)


@pytest.fixture(autouse=True)
def _clean_observer():
    """Never leak tracer/metrics/flight state across tests."""
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    flight.clear()
    yield
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    flight.clear()


# ---------------------------------------------------------------------------
# Thread safety


class TestRegistryContention:
    def test_counter_no_lost_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        threads_n, iters = 8, 5000

        def hammer():
            for _ in range(iters):
                counter.inc()

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * iters

    def test_histogram_no_lost_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        threads_n, iters = 8, 2000

        def hammer():
            for i in range(iters):
                hist.observe(0.5 + (i % 7))

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * iters
        assert hist.count == total
        # Per-bucket tallies must add up too: a torn read-modify-write
        # on bucket_counts would break this even with count intact.
        assert sum(hist.bucket_counts) == total

    def test_same_name_same_instance_under_races(self):
        registry = MetricsRegistry()
        seen = []

        def grab():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


# ---------------------------------------------------------------------------
# Histogram buckets and quantiles


class TestHistogramQuantiles:
    def test_default_buckets_sorted_finite(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(b > 0 for b in DEFAULT_BUCKETS)

    def test_empty_histogram_quantile_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_quantile_out_of_range_raises(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_quantiles_bracket_the_data(self):
        h = Histogram("h")
        for i in range(1, 101):
            h.observe(i / 10.0)  # 0.1 .. 10.0
        q10, q50, q90 = h.quantile(0.1), h.quantile(0.5), h.quantile(0.9)
        assert q10 <= q50 <= q90
        assert 0.1 <= q10 <= 2.0
        assert 4.0 <= q50 <= 6.0
        assert 8.0 <= q90 <= 10.0
        # Extremes clamp to the observed min/max, not bucket edges.
        assert h.quantile(0.0) == pytest.approx(0.1)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_custom_buckets_and_overflow(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]  # last is +Inf overflow
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_unsorted_buckets_normalised(self):
        h = Histogram("h", buckets=[2.0, 1.0])
        assert h.bounds == (1.0, 2.0)

    def test_non_finite_bucket_bound_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, float("inf")])

    def test_empty_buckets_fall_back_to_defaults(self):
        assert Histogram("h", buckets=[]).bounds == DEFAULT_BUCKETS

    def test_as_dict_has_percentiles(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        data = h.as_dict()
        assert data["count"] == 3
        assert data["p50"] is not None
        assert data["p50"] <= data["p95"] <= data["p99"]


# ---------------------------------------------------------------------------
# Prometheus rendering edge cases


class TestPrometheusEdges:
    def test_empty_registry_renders_bare_newline(self):
        assert prometheus.render_prometheus(snapshot={}) == "\n"

    def test_label_value_escaping(self):
        raw = 'say "hi"\\now\nthen'
        escaped = prometheus.escape_label_value(raw)
        assert '\\"' in escaped
        assert "\\\\" in escaped
        assert "\\n" in escaped
        assert "\n" not in escaped

    def test_nan_and_inf_values(self):
        obs.gauge("weird.nan").set(float("nan"))
        obs.gauge("weird.pos").set(float("inf"))
        obs.gauge("weird.neg").set(float("-inf"))
        out = prometheus.render_prometheus()
        assert "repro_weird_nan NaN" in out
        assert "repro_weird_pos +Inf" in out
        assert "repro_weird_neg -Inf" in out

    def test_help_line_precedes_type_line(self):
        obs.counter("serve.requests").inc()
        obs.histogram("serve.latency_ms").observe(1.0)
        lines = prometheus.render_prometheus().splitlines()
        for name in ("repro_serve_requests_total",
                     "repro_serve_latency_ms"):
            help_i = next(i for i, l in enumerate(lines)
                          if l.startswith(f"# HELP {name} "))
            type_i = next(i for i, l in enumerate(lines)
                          if l.startswith(f"# TYPE {name} "))
            assert help_i == type_i - 1

    def test_histogram_buckets_cumulative_and_conformant(self):
        h = obs.histogram("serve.latency_ms")
        for v in (0.5, 1.5, 3.0, 300.0):
            h.observe(v)
        out = prometheus.render_prometheus()
        counts = []
        for line in out.splitlines():
            if line.startswith("repro_serve_latency_ms_bucket"):
                counts.append(int(line.split()[-1]))
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[-1] == 4           # le="+Inf" sees everything
        assert "repro_serve_latency_ms_sum" in out
        assert "repro_serve_latency_ms_count 4" in out

    def test_exemplar_attached_to_bucket_line(self):
        h = obs.histogram("serve.latency_ms")
        h.observe(0.3, exemplar="trace-abc123")
        out = prometheus.render_prometheus()
        assert '# {trace_id="trace-abc123"} 0.3' in out


# ---------------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        capacity = flight._RING.maxlen
        for i in range(capacity + 100):
            flight.record("tick", index=i)
        buffered = flight.events()
        assert len(buffered) == capacity
        assert buffered[0]["index"] == 100  # oldest fell off
        assert buffered[-1]["index"] == capacity + 99

    def test_record_stamps_kind_and_ts(self):
        flight.record("fault", site="fdtd.step")
        (event,) = flight.events()
        assert event["kind"] == "fault"
        assert event["site"] == "fdtd.step"
        assert isinstance(event["ts"], float)

    def test_dump_empty_buffer_returns_none(self, tmp_path):
        assert flight.dump(path=tmp_path / "f.jsonl") is None

    def test_dump_writes_header_then_events(self, tmp_path):
        flight.record("watchdog", solver="fdtd", step=7)
        path = flight.dump(path=tmp_path / "flight-1-now.jsonl",
                           reason="unit-test")
        lines = [json.loads(l) for l in
                 path.read_text().strip().splitlines()]
        assert lines[0]["kind"] == "flight.dump"
        assert lines[0]["reason"] == "unit-test"
        assert lines[0]["events"] == 1
        assert lines[1]["kind"] == "watchdog"
        assert lines[1]["step"] == 7

    def test_auto_dump_rate_limited(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setattr(flight, "_last_auto_dump", 0.0)
        flight.record("crash", error="Boom")
        first = flight.auto_dump(reason="test")
        second = flight.auto_dump(reason="test")
        assert first is not None
        assert second is None  # inside the cooldown window

    def test_latest_dump_picks_newest(self, tmp_path):
        flight.record("a")
        p1 = flight.dump(path=tmp_path / "flight-1-a.jsonl")
        p2 = flight.dump(path=tmp_path / "flight-1-b.jsonl")
        import os
        os.utime(p1, (1, 1))
        assert flight.latest_dump(tmp_path) == p2

    def test_latest_dump_missing_dir(self, tmp_path):
        assert flight.latest_dump(tmp_path / "nope") is None

    def test_spans_feed_the_recorder_when_enabled(self):
        obs.enable()
        with obs.span("fdtd.step"):
            pass
        kinds = [e["kind"] for e in flight.events()]
        assert "span.open" in kinds
        assert "span.close" in kinds


# ---------------------------------------------------------------------------
# Phase timers and resource probes


class TestPhaseTimer:
    def test_laps_accumulate_and_flush_to_histograms(self):
        timer = obs.PhaseTimer("fdtd")
        t0 = timer.stamp()
        t0 = timer.lap("stencil", t0)
        timer.lap("boundary", t0)
        totals = timer.totals_ms()
        assert set(totals) == {"stencil", "boundary"}
        assert all(v >= 0 for v in totals.values())
        timer.flush()
        hists = obs.metrics_snapshot()["histograms"]
        assert hists["fdtd.phase.stencil_ms"]["count"] == 1
        assert hists["fdtd.phase.boundary_ms"]["count"] == 1
        assert timer.totals_ms() == {}  # flush clears

    def test_lap_is_chainable(self):
        timer = obs.PhaseTimer("x")
        t0 = timer.stamp()
        t1 = timer.lap("a", t0)
        assert isinstance(t1, int)
        assert t1 >= t0


class TestResourceProbe:
    def test_finish_reports_cpu_and_rss(self):
        probe = obs.ResourceProbe()
        sum(i * i for i in range(50000))
        usage = probe.finish()
        assert usage is not None
        assert usage["cpu_s"] >= 0.0
        assert usage["max_rss_kb"] > 0

    def test_tracemalloc_peak_is_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEMALLOC", "1")
        probe = obs.ResourceProbe()
        blob = [bytes(1024) for _ in range(512)]
        usage = probe.finish()
        del blob
        assert "py_peak_kb" in usage
        assert usage["py_peak_kb"] > 0

    def test_no_tracemalloc_key_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACEMALLOC", raising=False)
        usage = obs.ResourceProbe().finish()
        if usage is not None:  # None only off-unix
            assert "py_peak_kb" not in usage


class TestJobResources:
    def test_set_resources_lands_in_as_dict(self):
        record = JobRecord(label="j", key="k", status=STATUS_OK,
                           mode=MODE_POOL)
        record.set_resources({"cpu_s": 1.25, "max_rss_kb": 4096})
        data = record.as_dict()
        assert data["cpu_s"] == 1.25
        assert data["max_rss_kb"] == 4096
        assert "py_peak_kb" not in data

    def test_run_report_aggregates_resources(self):
        report = RunReport()
        for cpu, rss in ((0.5, 1000), (1.5, 3000)):
            record = JobRecord(label="j", key="k", status=STATUS_OK,
                               mode=MODE_POOL)
            record.set_resources({"cpu_s": cpu, "max_rss_kb": rss})
            report.add(record)
        report.add(JobRecord(label="hit", key="k2", status="hit",
                             mode="cached"))
        assert report.total_cpu_time == pytest.approx(2.0)
        assert report.max_rss_kb == 3000
        summary = report.finish().to_dict()["summary"]
        assert summary["total_cpu_s"] == pytest.approx(2.0)
        assert summary["max_rss_kb"] == 3000


# ---------------------------------------------------------------------------
# Bench trajectory store and regression gate


def _rec(bench, metric, value, commit, unit="s"):
    return {"bench": bench, "metric": metric, "value": value,
            "unit": unit, "commit": commit, "ts": "2026-08-08T00:00:00"}


class TestTrajectoryStore:
    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        trajectory.append_records(path, [_rec("b", "m", 1.0, "aaa")])
        trajectory.append_records(path, [_rec("b", "m", 2.0, "bbb")])
        records = trajectory.load_trajectory(path)
        assert [r["value"] for r in records] == [1.0, 2.0]

    def test_load_skips_torn_lines(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        path.write_text(
            json.dumps(_rec("b", "m", 1.0, "aaa")) + "\n"
            + '{"bench": "b", "metric": "m", "val'  # torn mid-write
            + "\nnot json at all\n"
            + json.dumps({"bench": "b"}) + "\n"     # missing fields
            + json.dumps(_rec("b", "m", 2.0, "bbb")) + "\n")
        records = trajectory.load_trajectory(path)
        assert [r["value"] for r in records] == [1.0, 2.0]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert trajectory.load_trajectory(tmp_path / "nope.jsonl") == []


class TestRegressionGate:
    def test_same_commit_twice_reports_zero_regressions(self):
        records = [_rec("obs", "wall_s", 1.0, "aaa"),
                   _rec("obs", "wall_s", 1.05, "aaa")]
        (c,) = trajectory.compare(records)
        assert c.baseline is None
        assert c.change is None
        assert not c.regressed

    def test_synthetic_2x_slowdown_is_flagged(self):
        records = ([_rec("obs", "wall_s", 1.0, "aaa")] * 3
                   + [_rec("obs", "wall_s", 2.0, "bbb")])
        (c,) = trajectory.compare(records, threshold=0.15)
        assert c.baseline == pytest.approx(1.0)
        assert c.change == pytest.approx(1.0)
        assert c.regressed

    def test_speedup_not_flagged(self):
        records = ([_rec("obs", "wall_s", 1.0, "aaa")] * 3
                   + [_rec("obs", "wall_s", 0.5, "bbb")])
        (c,) = trajectory.compare(records)
        assert not c.regressed

    def test_throughput_drop_is_a_regression(self):
        records = ([_rec("serve", "req_per_s", 100.0, "aaa",
                         unit="req/s")] * 3
                   + [_rec("serve", "req_per_s", 50.0, "bbb",
                           unit="req/s")])
        (c,) = trajectory.compare(records)
        assert c.change == pytest.approx(0.5)  # sign-normalised: worse
        assert c.regressed

    def test_throughput_rise_is_fine(self):
        records = ([_rec("serve", "req_per_s", 100.0, "aaa",
                         unit="req/s")] * 3
                   + [_rec("serve", "req_per_s", 200.0, "bbb",
                           unit="req/s")])
        (c,) = trajectory.compare(records)
        assert not c.regressed

    def test_latest_is_median_of_repeat_runs(self):
        records = ([_rec("obs", "wall_s", 1.0, "aaa")] * 3
                   + [_rec("obs", "wall_s", 0.9, "bbb"),
                      _rec("obs", "wall_s", 1.0, "bbb"),
                      _rec("obs", "wall_s", 50.0, "bbb")])  # one outlier
        (c,) = trajectory.compare(records)
        assert c.latest == pytest.approx(1.0)
        assert not c.regressed

    def test_bench_filter(self):
        records = [_rec("a", "m", 1.0, "x"), _rec("b", "m", 1.0, "x")]
        comparisons = trajectory.compare(records, bench="a")
        assert [c.bench for c in comparisons] == ["a"]

    def test_report_contains_sparkline_and_verdict(self):
        records = ([_rec("obs", "wall_s", 1.0, "aaa")] * 3
                   + [_rec("obs", "wall_s", 2.0, "bbb")])
        out = trajectory.format_report(trajectory.compare(records))
        assert "REGRESSED" in out
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_higher_is_better_heuristics(self):
        assert trajectory.higher_is_better("anything", "req/s")
        assert trajectory.higher_is_better("steps_per_s", "")
        assert trajectory.higher_is_better("decode_throughput", "")
        assert not trajectory.higher_is_better("wall_s", "s")
        assert not trajectory.higher_is_better("max_rss_kb", "kB")


# ---------------------------------------------------------------------------
# CLI: repro bench report|compare, repro debug dump


class TestBenchCli:
    def test_report_missing_trajectory_exits_zero(self, tmp_path, capsys):
        code = main(["bench", "report",
                     "--trajectory", str(tmp_path / "none.jsonl")])
        assert code == 0
        assert "no trajectory" in capsys.readouterr().out

    def test_compare_missing_trajectory_exits_three(self, tmp_path,
                                                    capsys):
        # Distinct from a real regression (1) and from success (0):
        # CI can treat "nothing to compare yet" as a soft skip.
        code = main(["bench", "compare",
                     "--trajectory", str(tmp_path / "none.jsonl")])
        assert code == 3
        assert "no trajectory" in capsys.readouterr().out

    def test_compare_same_commit_twice_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "traj.jsonl"
        trajectory.append_records(path, [
            _rec("obs", "wall_s", 1.0, "aaa"),
            _rec("obs", "wall_s", 1.02, "aaa")])
        code = main(["bench", "compare", "--trajectory", str(path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_flags_seeded_slowdown(self, tmp_path, capsys):
        path = tmp_path / "traj.jsonl"
        trajectory.append_records(
            path, [_rec("obs", "wall_s", 1.0, "aaa")] * 3
            + [_rec("obs", "wall_s", 2.0, "bbb")])
        code = main(["bench", "compare", "--trajectory", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "obs.wall_s" in out

    def test_report_never_gates(self, tmp_path, capsys):
        path = tmp_path / "traj.jsonl"
        trajectory.append_records(
            path, [_rec("obs", "wall_s", 1.0, "aaa")] * 3
            + [_rec("obs", "wall_s", 2.0, "bbb")])
        code = main(["bench", "report", "--trajectory", str(path)])
        assert code == 0

    def test_compare_threshold_is_tunable(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        trajectory.append_records(
            path, [_rec("obs", "wall_s", 1.0, "aaa")] * 3
            + [_rec("obs", "wall_s", 1.3, "bbb")])
        assert main(["bench", "compare", "--trajectory", str(path),
                     "--threshold", "0.5"]) == 0
        assert main(["bench", "compare", "--trajectory", str(path),
                     "--threshold", "0.1"]) == 1


class TestDebugCli:
    def test_no_dumps_exits_one(self, tmp_path, capsys):
        code = main(["debug", "dump", "--dir", str(tmp_path)])
        assert code == 1
        assert "no flight dumps" in capsys.readouterr().err

    def test_dump_is_printed(self, tmp_path, capsys):
        flight.record("watchdog", solver="fdtd", step=5,
                      reason="non-finite field values")
        flight.dump(path=tmp_path / "flight-1-t.jsonl",
                    reason="divergence:fdtd")
        code = main(["debug", "dump", "--dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "divergence:fdtd" in out
        assert "watchdog" in out
        assert "solver=fdtd" in out

    def test_dump_json_passthrough(self, tmp_path, capsys):
        flight.record("breaker", name="llg", state="open")
        flight.dump(path=tmp_path / "flight-1-t.jsonl", reason="r")
        code = main(["debug", "dump", "--dir", str(tmp_path), "--json"])
        assert code == 0
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()]
        assert lines[0]["kind"] == "flight.dump"
        assert lines[1]["kind"] == "breaker"


class TestExcepthook:
    def test_install_is_idempotent_and_chains(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setattr(flight, "_last_auto_dump", 0.0)
        calls = []
        monkeypatch.setattr(flight, "_prev_excepthook", None)
        monkeypatch.setattr(sys, "excepthook", lambda *a: calls.append(a))
        flight.install_excepthook()
        first = sys.excepthook
        flight.install_excepthook()
        assert sys.excepthook is first  # second install is a no-op
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            sys.excepthook(*sys.exc_info())
        assert len(calls) == 1  # original hook still ran
        kinds = [e["kind"] for e in flight.events()]
        assert "crash" in kinds
        assert flight.latest_dump(tmp_path) is not None
