"""Evaluation-layer tests: the Table III arithmetic must be exact."""

import math

import pytest

from repro.evaluation import (
    PAPER_ME_CELL,
    METransducer,
    build_table_iii,
    cmos_gate,
    estimate_gate_energy,
    format_table_iii,
    headline_ratios,
    ladder_maj3_report,
    ladder_xor_report,
    maj_transistor_count,
    triangle_maj3_report,
    triangle_xor_report,
)


class TestTransducer:
    def test_paper_cell_values(self):
        assert PAPER_ME_CELL.power == pytest.approx(34.4e-9)
        assert PAPER_ME_CELL.delay == pytest.approx(0.42e-9)
        assert PAPER_ME_CELL.pulse_duration == pytest.approx(100e-12)

    def test_excitation_energy_3_44_aj(self):
        assert PAPER_ME_CELL.excitation_energy == pytest.approx(3.44e-18)

    def test_energy_scales_quadratically_with_level(self):
        assert PAPER_ME_CELL.excitation_energy_at_level(2.0) \
            == pytest.approx(4 * 3.44e-18)

    def test_with_pulse(self):
        longer = PAPER_ME_CELL.with_pulse(200e-12)
        assert longer.excitation_energy == pytest.approx(6.88e-18)
        assert PAPER_ME_CELL.pulse_duration == pytest.approx(100e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            METransducer(power=0.0)
        with pytest.raises(ValueError):
            METransducer(delay=-1.0)
        with pytest.raises(ValueError):
            PAPER_ME_CELL.excitation_energy_at_level(-1.0)


class TestCmosData:
    def test_table_iii_values(self):
        assert cmos_gate("16nm", "MAJ").energy == pytest.approx(466e-18)
        assert cmos_gate("16nm", "XOR").energy == pytest.approx(303e-18)
        assert cmos_gate("7nm", "MAJ").energy == pytest.approx(16.4e-18)
        assert cmos_gate("7nm", "XOR").energy == pytest.approx(5.4e-18)
        assert cmos_gate("7nm", "XOR").delay == pytest.approx(0.01e-9)

    def test_transistor_counts(self):
        assert cmos_gate("16nm", "MAJ").device_count == 16
        assert cmos_gate("16nm", "XOR").device_count == 8
        assert maj_transistor_count() == 16

    def test_lookup_flexibility(self):
        assert cmos_gate("16nm CMOS", "maj").energy == pytest.approx(466e-18)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            cmos_gate("3nm", "MAJ")


class TestGateReports:
    def test_triangle_maj_10_3_aj(self):
        report = triangle_maj3_report()
        assert report.energy == pytest.approx(10.32e-18, rel=1e-3)
        assert report.n_cells == 5
        assert report.delay == pytest.approx(0.4e-9)

    def test_triangle_xor_6_9_aj(self):
        report = triangle_xor_report()
        assert report.energy == pytest.approx(6.88e-18, rel=1e-3)
        assert report.n_cells == 4

    def test_ladder_13_7_aj(self):
        assert ladder_maj3_report().energy == pytest.approx(13.76e-18,
                                                            rel=1e-3)
        assert ladder_xor_report().energy == pytest.approx(13.76e-18,
                                                           rel=1e-3)
        assert ladder_maj3_report().n_cells == 6

    def test_ladder_real_levels_cost_more(self):
        nominal = ladder_maj3_report()
        real = ladder_maj3_report(real_levels=True)
        assert real.energy > nominal.energy

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_gate_energy("x", 0, 2)
        with pytest.raises(ValueError):
            estimate_gate_energy("x", 2, 0)
        with pytest.raises(ValueError):
            estimate_gate_energy("x", 2, 2,
                                 excitation_levels={"I1": 1.0})

    def test_energy_delay_product(self):
        report = triangle_maj3_report()
        assert report.energy_delay_product == pytest.approx(
            report.energy * report.delay)


class TestHeadlineRatios:
    def test_energy_savings_vs_sw_25_and_50_percent(self):
        ratios = headline_ratios()
        assert ratios.energy_saving_vs_sw_maj == pytest.approx(0.25)
        assert ratios.energy_saving_vs_sw_xor == pytest.approx(0.5)

    def test_xor_energy_vs_cmos_43x_and_0_8x(self):
        ratios = headline_ratios()
        assert ratios.energy_vs_cmos16_xor == pytest.approx(44.0, rel=0.03)
        assert ratios.energy_vs_cmos7_xor == pytest.approx(0.8, rel=0.03)

    def test_maj_energy_vs_7nm_1_6x(self):
        assert headline_ratios().energy_vs_cmos7_maj == pytest.approx(
            1.6, rel=0.02)

    def test_delay_overheads(self):
        ratios = headline_ratios()
        assert ratios.delay_overhead_cmos16_maj == pytest.approx(13.3,
                                                                 rel=0.01)
        assert ratios.delay_overhead_cmos7_maj == pytest.approx(20.0)
        assert ratios.delay_overhead_cmos16_xor == pytest.approx(13.3,
                                                                 rel=0.01)
        assert ratios.delay_overhead_cmos7_xor == pytest.approx(40.0)

    def test_as_dict_complete(self):
        d = headline_ratios().as_dict()
        assert len(d) == 10


class TestTableRendering:
    def test_eight_rows(self):
        rows = build_table_iii()
        assert len(rows) == 8
        designs = {r.design for r in rows}
        assert "This work" in designs
        assert "SW [23]" in designs

    def test_this_work_wins_sw_comparison(self):
        rows = {(r.design, r.function): r for r in build_table_iii()}
        assert rows[("This work", "MAJ")].energy \
            < rows[("SW [23]", "MAJ")].energy
        assert rows[("This work", "MAJ")].device_count \
            < rows[("SW [23]", "MAJ")].device_count

    def test_format_contains_key_numbers(self):
        text = format_table_iii()
        assert "10.3" in text
        assert "6.9" in text
        assert "466" in text
        assert "This work" in text
