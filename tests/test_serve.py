"""Tests for the gate-evaluation service (``repro.serve``).

Covers the contract promised in docs/SERVING.md: single-flight
coalescing (a 64-way thundering herd of identical requests executes
exactly one job), micro-batching of network-tier requests into one
executor call, bounded-queue and token-bucket admission control with
429 semantics, corrupt cache entries recomputed through the coalescing
path, the hand-rolled HTTP layer end to end (``ServerThread`` +
``ServeClient``), and graceful drain -- including a real
``python -m repro serve`` subprocess stopped with SIGTERM.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor as _TP

import pytest

from repro import obs
from repro.resilience import FaultPlan, FaultSpec, faults
from repro.runtime import DiskCache, Executor, JobSpec
from repro.serve import (
    GatePipeline,
    Overloaded,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    TokenBucket,
)
from repro.serve.pipeline import (
    SOURCE_BATCHED,
    SOURCE_CACHED,
    SOURCE_COALESCED,
    SOURCE_COMPUTED,
)

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def _clean_observer():
    """Never leak global tracer/metrics state into (or out of) a test."""
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()
    yield
    faults.uninstall()
    obs.disable()
    obs.drain_spans()
    obs.reset_metrics()


# -- module-level job functions (content-addressable by the cache) ----------

CALLS = {"n": 0}
_CALL_LOCK = threading.Lock()


def counted_add(a, b):
    """Records every real execution -- the coalescing tests assert on it."""
    with _CALL_LOCK:
        CALLS["n"] += 1
    time.sleep(0.02)  # long enough that the herd overlaps the leader
    return a + b


def quick_add(a, b):
    return a + b


def _pipeline(tmp_path, **kwargs):
    cache = DiskCache(root=str(tmp_path / "cache"))
    executor = Executor(cache=cache, workers=1)
    return GatePipeline(executor, cache=cache, **kwargs), executor


def _metric_value(text, name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name} not found in:\n{text}")


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.take()
        assert bucket.take()
        assert not bucket.take()
        assert bucket.retry_after() > 0.0
        time.sleep(0.05)
        assert bucket.take()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0)


class TestCoalescing:
    def test_64_identical_requests_execute_once(self, tmp_path):
        """ISSUE acceptance: 64 concurrent identical requests on a cold
        cache -> exactly one underlying execution, 63 coalesced."""
        obs.enable()
        CALLS["n"] = 0
        pipeline, _ = _pipeline(tmp_path)
        spec = JobSpec(counted_add, {"a": 1, "b": 2})

        async def herd():
            return await asyncio.gather(
                *(pipeline.submit(spec) for _ in range(64)))

        results = asyncio.run(herd())
        assert [r.value for r in results] == [3] * 64
        assert CALLS["n"] == 1
        assert obs.counter("executor.jobs").value == 1
        assert obs.counter("serve.coalesced").value == 63
        assert sum(r.source == SOURCE_COMPUTED for r in results) == 1
        assert sum(r.source == SOURCE_COALESCED for r in results) == 63

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path)
        specs = [JobSpec(quick_add, {"a": i, "b": 10}) for i in range(3)]

        async def main():
            return await asyncio.gather(
                *(pipeline.submit(s) for s in specs))

        results = asyncio.run(main())
        assert [r.value for r in results] == [10, 11, 12]
        assert obs.counter("serve.coalesced").value == 0

    def test_second_round_is_served_from_cache(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path)
        spec = JobSpec(quick_add, {"a": 4, "b": 5})
        first = asyncio.run(pipeline.submit(spec))
        second = asyncio.run(pipeline.submit(spec))
        assert first.source == SOURCE_COMPUTED
        assert second.source == SOURCE_CACHED
        assert second.value == 9
        assert obs.counter("serve.cache_fastpath").value == 1

    def test_corrupt_cache_entry_recomputes_not_500(self, tmp_path):
        """A corrupt on-disk entry read through the coalescing path must
        be treated as a miss and recomputed -- never surfaced as an
        error to any of the coalesced requests."""
        pipeline, executor = _pipeline(tmp_path)
        spec = JobSpec(quick_add, {"a": 6, "b": 7})
        asyncio.run(pipeline.submit(spec))  # populate the entry
        json_path, _ = executor.cache._paths(spec.key(pipeline.salt))
        with open(json_path, "w") as handle:
            handle.write("{ truncated")

        async def herd():
            return await asyncio.gather(
                *(pipeline.submit(spec) for _ in range(8)))

        results = asyncio.run(herd())
        assert [r.value for r in results] == [13] * 8
        leaders = [r for r in results if r.source != SOURCE_COALESCED]
        assert len(leaders) == 1
        assert leaders[0].source in (SOURCE_COMPUTED, SOURCE_BATCHED)
        # And the entry healed: the next lookup is a clean hit.
        repaired = asyncio.run(pipeline.submit(spec))
        assert repaired.source == SOURCE_CACHED


class TestBatching:
    def test_window_groups_requests_into_one_executor_call(self, tmp_path):
        obs.enable()
        pipeline, _ = _pipeline(tmp_path, batch_window=0.05)
        specs = [JobSpec(quick_add, {"a": i, "b": 100}) for i in range(4)]

        async def main():
            return await asyncio.gather(
                *(pipeline.submit(s, batchable=True) for s in specs))

        results = asyncio.run(main())
        assert [r.value for r in results] == [100, 101, 102, 103]
        assert all(r.source == SOURCE_BATCHED for r in results)
        assert all(r.batch_size == 4 for r in results)
        assert obs.counter("serve.batches").value == 1
        assert obs.counter("serve.batched").value == 4

    def test_batch_max_flushes_immediately(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path, batch_window=5.0, batch_max=2)
        specs = [JobSpec(quick_add, {"a": i, "b": 200}) for i in range(4)]

        async def main():
            return await asyncio.gather(
                *(pipeline.submit(s, batchable=True) for s in specs))

        t0 = time.monotonic()
        results = asyncio.run(main())
        assert time.monotonic() - t0 < 4.0  # never waited out the window
        assert [r.value for r in results] == [200, 201, 202, 203]
        assert all(r.batch_size == 2 for r in results)
        assert obs.counter("serve.batches").value == 2

    def test_lone_batchable_request_is_computed(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path, batch_window=0.01)
        result = asyncio.run(pipeline.submit(
            JobSpec(quick_add, {"a": 3, "b": 300}), batchable=True))
        assert result.value == 303
        assert result.source == SOURCE_COMPUTED
        assert result.batch_size == 1


class TestBackpressure:
    def test_queue_full_rejects_with_overloaded(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path, max_queue=2)
        specs = [JobSpec(counted_add, {"a": i, "b": 0}) for i in range(6)]

        async def main():
            results = await asyncio.gather(
                *(pipeline.submit(s) for s in specs),
                return_exceptions=True)
            await pipeline.drain()
            return results

        results = asyncio.run(main())
        served = [r for r in results if not isinstance(r, Exception)]
        rejected = [r for r in results if isinstance(r, Overloaded)]
        assert len(served) == 2
        assert len(rejected) == 4
        assert all(r.retry_after > 0 for r in rejected)
        assert obs.counter("serve.rejected_queue").value == 4

    def test_rate_limit_rejects_with_retry_after(self, tmp_path):
        pipeline, _ = _pipeline(tmp_path, rate=1.0, burst=1.0)
        specs = [JobSpec(quick_add, {"a": i, "b": 1}) for i in range(2)]

        async def main():
            results = await asyncio.gather(
                *(pipeline.submit(s) for s in specs),
                return_exceptions=True)
            await pipeline.drain()
            return results

        results = asyncio.run(main())
        rejected = [r for r in results if isinstance(r, Overloaded)]
        assert len(rejected) == 1
        assert rejected[0].retry_after > 0
        assert obs.counter("serve.rejected_rate").value == 1

    def test_cache_hits_bypass_admission(self, tmp_path):
        """Warm keys are served even when the service sheds new work."""
        pipeline, _ = _pipeline(tmp_path, rate=1.0, burst=1.0)
        spec = JobSpec(quick_add, {"a": 8, "b": 9})
        asyncio.run(pipeline.submit(spec))  # consumes the only token
        for _ in range(5):                  # all hits, none rejected
            assert asyncio.run(pipeline.submit(spec)).source == SOURCE_CACHED
        assert obs.counter("serve.rejected_rate").value == 0


def _server(tmp_path, **overrides):
    settings = dict(port=0, cache_dir=str(tmp_path / "cache"),
                    access_log=str(tmp_path / "access.jsonl"))
    settings.update(overrides)
    return ServerThread(ServeConfig(**settings))


class TestHttpService:
    def test_healthz_gate_sweep_metrics(self, tmp_path):
        with _server(tmp_path) as server:
            client = ServeClient(server.base_url)
            health = client.health()
            assert health["status"] == "ok"
            assert "version" in health

            first = client.gate("xor", [1, 0])
            assert first["result"]["correct"] is True
            assert first["served"]["source"] in (SOURCE_COMPUTED,
                                                SOURCE_BATCHED)
            again = client.gate("xor", [1, 0])
            assert again["served"]["source"] == SOURCE_CACHED

            sweep = client.sweep("maj3")
            assert sweep["all_correct"] is True
            assert len(sweep["cases"]) == 8

            text = client.metrics()
            assert "repro_serve_requests_total" in text
            assert _metric_value(text, "repro_serve_requests_total") >= 4

    def test_validation_and_routing_errors(self, tmp_path):
        with _server(tmp_path) as server:
            client = ServeClient(server.base_url, retries=0)
            with pytest.raises(ServeError) as err:
                client.gate("flux", [0, 1])
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.gate("maj3", [0, 1])        # wrong arity
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.gate("maj3", [0, 1, 1], tier="mumax3")
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.gate("maj3", [0, 1, 1], bogus_param=3)
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client._request("POST", "/v1/nope", {})
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client._request("GET", "/v1/gate")
            assert err.value.status == 405

    def test_http_herd_executes_once(self, tmp_path):
        """The acceptance scenario over real HTTP: 64 concurrent
        identical POST /v1/gate requests, cold cache -> one execution
        (every non-leader answer is coalesced or cached)."""
        with _server(tmp_path) as server:
            client = ServeClient(server.base_url, timeout=60.0)

            def post(_):
                return client.gate("maj3", [1, 0, 1])

            with _TP(max_workers=64) as pool:
                answers = list(pool.map(post, range(64)))

            assert all(a["result"]["correct"] for a in answers)
            sources = [a["served"]["source"] for a in answers]
            leaders = [s for s in sources
                       if s in (SOURCE_COMPUTED, SOURCE_BATCHED)]
            assert len(leaders) == 1
            assert all(s in (SOURCE_COALESCED, SOURCE_CACHED)
                       for s in sources if s not in leaders)

            text = client.metrics()
            assert _metric_value(text, "repro_executor_jobs_total") == 1
            coalesced = _metric_value(text, "repro_serve_coalesced_total")
            cached = _metric_value(text, "repro_serve_cache_fastpath_total")
            assert coalesced + cached == 63

    def test_rate_limited_server_returns_429(self, tmp_path):
        with _server(tmp_path, rate=0.001, burst=1.0) as server:
            client = ServeClient(server.base_url, retries=0)
            first = client.gate("xor", [0, 1])
            assert first["result"]["correct"] is True
            with pytest.raises(ServeError) as err:
                client.gate("xor", [1, 1])  # different key, no tokens left
            assert err.value.status == 429
            assert err.value.retry_after is not None
            assert err.value.retry_after >= 1.0

    def test_client_retries_through_429(self, tmp_path):
        with _server(tmp_path, rate=2.0, burst=1.0) as server:
            client = ServeClient(server.base_url, retries=5, backoff=0.05)
            assert client.gate("xor", [0, 0])["result"]["correct"] is True
            # Token bucket is empty now; the client must absorb the 429
            # and succeed on a retry once it refills.
            assert client.gate("xor", [1, 0])["result"]["correct"] is True

    def test_graceful_drain_writes_access_log(self, tmp_path):
        server = _server(tmp_path)
        server.start()
        client = ServeClient(server.base_url)
        client.gate("xor", [1, 1])
        server.stop()
        lines = [json.loads(line) for line in
                 open(tmp_path / "access.jsonl", encoding="utf-8")]
        assert len(lines) >= 1
        gate_line = next(l for l in lines if l["path"] == "/v1/gate")
        assert gate_line["status"] == 200
        assert gate_line["method"] == "POST"
        assert gate_line["request_id"]
        assert gate_line["duration_ms"] >= 0
        # Port is released after drain.
        with pytest.raises(Exception):
            urllib.request.urlopen(server.base_url + "/healthz", timeout=0.5)


def _post(base, path, payload, headers=None, timeout=30.0):
    """Raw POST returning (status, headers, body) without raising."""
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


@pytest.fixture()
def surrogate_dir(tmp_path):
    """A characterized + fitted XOR surrogate model on disk."""
    from repro.surrogate import (
        AxisSpec,
        CharacterizationStore,
        characterize,
        clear_registry,
        fit_surrogate,
    )

    clear_registry()
    store = CharacterizationStore(str(tmp_path / "surrogate"))
    dataset = store.dataset("xor", axes=(
        AxisSpec("phase_noise", (0.0, 0.2)),
        AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
        AxisSpec("geometry_jitter", (0.0,)),
        AxisSpec("temperature", (0.0,))), n_trials=2)
    fit_surrogate(characterize(dataset).values()).save(
        store.model_path("xor"))
    yield store.root
    clear_registry()


class TestSurrogateServing:
    def test_in_domain_answers_from_surrogate(self, tmp_path,
                                              surrogate_dir):
        with _server(tmp_path, surrogate_dir=surrogate_dir) as server:
            client = ServeClient(server.base_url)
            reply = client.gate("xor", [1, 0], tier="surrogate",
                                phase_noise=0.1)
            assert reply["served"]["source"] == "surrogate"
            assert reply["result"]["tier"] == "surrogate"
            assert reply["result"]["correct"] is True
            assert "degraded_from" not in reply["result"]

    def test_sweep_served_from_surrogate(self, tmp_path, surrogate_dir):
        with _server(tmp_path, surrogate_dir=surrogate_dir) as server:
            client = ServeClient(server.base_url)
            sweep = client.sweep("xor", tier="surrogate")
            assert sweep["all_correct"] is True
            assert all(case["tier"] == "surrogate"
                       for case in sweep["cases"])

    def test_out_of_domain_falls_back_with_annotation(self, tmp_path,
                                                      surrogate_dir):
        with _server(tmp_path, surrogate_dir=surrogate_dir) as server:
            client = ServeClient(server.base_url)
            reply = client.gate("xor", [1, 0], tier="surrogate",
                                frequency=12e9)  # outside the grid
            assert reply["result"]["tier"] == "network"
            assert reply["result"]["degraded_from"] == "surrogate"
            assert reply["result"]["correct"] is True
            assert reply["served"]["source"] != "surrogate"

            # The fallback is cached under the network spec; a second
            # hit must STILL carry the annotation (applied after
            # retrieval, not baked into the cached value).
            again = client.gate("xor", [1, 0], tier="surrogate",
                                frequency=12e9)
            assert again["served"]["source"] == SOURCE_CACHED
            assert again["result"]["degraded_from"] == "surrogate"

    def test_unfitted_model_falls_back(self, tmp_path):
        from repro.surrogate import clear_registry

        clear_registry()
        empty = str(tmp_path / "no-models")
        os.makedirs(empty)
        with _server(tmp_path, surrogate_dir=empty) as server:
            client = ServeClient(server.base_url)
            reply = client.gate("xor", [1, 0], tier="surrogate")
            assert reply["result"]["correct"] is True
            assert reply["result"]["degraded_from"] == "surrogate"

    def test_surrogate_params_rejected_on_physical_tier(self, tmp_path):
        with _server(tmp_path) as server:
            client = ServeClient(server.base_url, retries=0)
            with pytest.raises(ServeError) as err:
                client.gate("xor", [1, 0], tier="network",
                            phase_noise=0.1)
            assert err.value.status == 400


class TestDeadlines:
    def test_deadline_exceeded_returns_504(self, tmp_path):
        """A request whose deadline expires gets 504 while the
        computation keeps running for coalescers and the cache."""
        faults.install(FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="slow", at=1,
                      count=100, delay_s=1.0)]))
        with _server(tmp_path) as server:
            t0 = time.monotonic()
            status, _headers, body = _post(
                server.base_url, "/v1/gate",
                {"gate": "xor", "bits": [0, 1]},
                headers={"x-deadline-ms": "150"})
            elapsed = time.monotonic() - t0
            assert status == 504
            assert "deadline" in body["error"]
            assert elapsed < 0.9  # answered well before the 1 s job
            faults.uninstall()
            # The shielded computation finished behind the 504: the
            # same key is now (or soon) a cache hit, not a recompute.
            status, _headers, body = _post(
                server.base_url, "/v1/gate",
                {"gate": "xor", "bits": [0, 1]}, timeout=30.0)
            assert status == 200
            assert body["result"]["correct"] is True

    def test_configured_default_deadline_applies(self, tmp_path):
        faults.install(FaultPlan(specs=[
            FaultSpec(site="executor.invoke", kind="slow", at=1,
                      count=100, delay_s=1.0)]))
        with _server(tmp_path, deadline_s=0.15) as server:
            status, _headers, body = _post(
                server.base_url, "/v1/gate",
                {"gate": "xor", "bits": [1, 0]})
            assert status == 504
            faults.uninstall()

    def test_bad_deadline_header_is_400(self, tmp_path):
        with _server(tmp_path) as server:
            for bad in ("soon", "-5", "0", "inf"):
                status, _headers, body = _post(
                    server.base_url, "/v1/gate",
                    {"gate": "xor", "bits": [0, 1]},
                    headers={"x-deadline-ms": bad})
                assert status == 400, bad
                assert "x-deadline-ms" in body["error"]


class TestCircuitBreaker:
    def test_open_circuit_rejects_with_503_and_degrades_healthz(
            self, tmp_path):
        with _server(tmp_path, breaker_threshold=1,
                     breaker_reset_s=60.0) as server:
            client = ServeClient(server.base_url, retries=0)
            # Warm one key while the tier is healthy.
            assert client.gate("xor", [0, 0])["result"]["correct"] is True

            faults.install(FaultPlan(specs=[
                FaultSpec(site="executor.invoke", kind="error", at=1,
                          count=100)]))
            with pytest.raises(ServeError) as err:
                client.gate("xor", [0, 1])  # fails -> breaker opens
            assert err.value.status == 500

            status, headers, body = _post(
                server.base_url, "/v1/gate",
                {"gate": "xor", "bits": [1, 1]})
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0
            assert "circuit" in body["error"]

            health = client.health()
            assert health["status"] == "degraded"
            assert health["circuits"]["tier:network"]["state"] == "open"

            # Cached keys are still served while the circuit is open.
            status, _headers, body = _post(
                server.base_url, "/v1/gate",
                {"gate": "xor", "bits": [0, 0]})
            assert status == 200
            assert body["served"]["source"] == SOURCE_CACHED

            text = client.metrics()
            assert _metric_value(
                text, "repro_serve_rejected_circuit_total") >= 1
            faults.uninstall()

    def test_circuit_recovers_through_half_open_probe(self, tmp_path):
        with _server(tmp_path, breaker_threshold=1,
                     breaker_reset_s=0.3) as server:
            client = ServeClient(server.base_url, retries=0)
            # Exactly enough fault hits to fail all three attempts
            # (retries=2 extra attempts) of one job, then go inert.
            faults.install(FaultPlan(specs=[
                FaultSpec(site="executor.invoke", kind="error", at=1,
                          count=3)]))
            with pytest.raises(ServeError) as err:
                client.gate("xor", [0, 1])
            assert err.value.status == 500
            assert client.health()["status"] == "degraded"

            time.sleep(0.4)  # past the reset timeout: probe admitted
            answer = client.gate("xor", [1, 0])
            assert answer["result"]["correct"] is True
            health = client.health()
            assert health["status"] == "ok"
            assert health["circuits"]["tier:network"]["state"] == "closed"


class TestServeSubprocess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        """`python -m repro serve` exits 0 on SIGTERM after finishing
        in-flight work, leaving a flushed access log behind."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        access = tmp_path / "access.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--cache-dir", str(tmp_path / "cache"),
             "--access-log", str(access)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            base = f"http://127.0.0.1:{port}"
            client = ServeClient(base, retries=8, backoff=0.25)
            assert client.health()["status"] == "ok"
            assert client.gate("xor", [0, 1])["result"]["correct"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        lines = access.read_text().strip().splitlines()
        assert len(lines) >= 2  # healthz + gate at minimum
        assert any(json.loads(l)["path"] == "/v1/gate" for l in lines)

    def test_sigterm_drains_in_flight_microbatch(self, tmp_path):
        """SIGTERM while a micro-batch is still collecting must flush
        the batch and answer every waiter before the process exits."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--cache-dir", str(tmp_path / "cache"),
             "--batch-window-ms", "2000"],  # far longer than the test
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            base = f"http://127.0.0.1:{port}"
            client = ServeClient(base, retries=8, backoff=0.25)
            assert client.health()["status"] == "ok"

            answers = {}

            def post(bits):
                answers[tuple(bits)] = _post(
                    base, "/v1/gate", {"gate": "xor", "bits": bits},
                    timeout=30.0)

            threads = [threading.Thread(target=post, args=([0, 1],)),
                       threading.Thread(target=post, args=([1, 0],))]
            for thread in threads:
                thread.start()
            # Wait until both jobs are admitted into the (2 s) batch
            # window, then interrupt the collection with SIGTERM.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.health()["in_flight"] >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("batch never formed")
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert set(answers) == {(0, 1), (1, 0)}
        for status, _headers, body in answers.values():
            assert status == 200
            assert body["result"]["correct"] is True
            assert body["served"]["source"] == SOURCE_BATCHED
            assert body["served"]["batch_size"] == 2
