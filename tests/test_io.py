"""I/O tests: OVF round trips and table formatting."""

import io

import numpy as np
import pytest

from repro.io import OvfField, format_table, format_truth_table, read_ovf, write_ovf
from repro.micromag import Mesh, normalize_field


class TestOvfRoundTrip:
    def _random_field(self, rng):
        mesh = Mesh(cell_size=(5e-9, 4e-9, 1e-9), shape=(6, 5, 1),
                    origin=(1e-9, 2e-9, 0.0))
        data = rng.standard_normal(mesh.field_shape)
        normalize_field(data)
        return OvfField(mesh=mesh, data=data, title="test_m")

    def test_round_trip_preserves_data(self, rng, tmp_path):
        field = self._random_field(rng)
        path = str(tmp_path / "state.ovf")
        write_ovf(path, field)
        back = read_ovf(path)
        assert back.mesh.shape == field.mesh.shape
        assert back.mesh.cell_size == pytest.approx(field.mesh.cell_size)
        assert np.allclose(back.data, field.data, atol=1e-8)
        assert back.title == "test_m"

    def test_round_trip_via_handles(self, rng):
        field = self._random_field(rng)
        buffer = io.StringIO()
        write_ovf(buffer, field)
        buffer.seek(0)
        back = read_ovf(buffer)
        assert np.allclose(back.data, field.data, atol=1e-8)

    def test_header_is_ovf2(self, rng):
        buffer = io.StringIO()
        write_ovf(buffer, self._random_field(rng))
        text = buffer.getvalue()
        assert text.startswith("# OOMMF OVF 2.0")
        assert "# meshtype: rectangular" in text
        assert "# valuedim: 3" in text

    def test_data_order_x_fastest(self, rng):
        # OVF data order: x fastest, then y, then z.
        mesh = Mesh(cell_size=(1e-9,) * 3, shape=(2, 2, 1))
        data = np.zeros(mesh.field_shape)
        data[0, 0, 0, 0] = 1.0   # first value
        data[0, 0, 0, 1] = 2.0   # second value (x neighbour)
        data[0, 0, 1, 0] = 3.0   # third value (y neighbour)
        buffer = io.StringIO()
        write_ovf(buffer, OvfField(mesh=mesh, data=data))
        rows = [line for line in buffer.getvalue().splitlines()
                if line and not line.startswith("#")]
        assert float(rows[0].split()[0]) == 1.0
        assert float(rows[1].split()[0]) == 2.0
        assert float(rows[2].split()[0]) == 3.0

    def test_shape_mismatch_rejected(self, small_mesh):
        with pytest.raises(ValueError):
            OvfField(mesh=small_mesh, data=np.zeros((3, 1, 2, 2)))

    def test_truncated_data_detected(self, rng):
        field = self._random_field(rng)
        buffer = io.StringIO()
        write_ovf(buffer, field)
        lines = buffer.getvalue().splitlines()
        # Drop one data row.
        data_rows = [i for i, l in enumerate(lines)
                     if l and not l.startswith("#")]
        del lines[data_rows[3]]
        broken = io.StringIO("\n".join(lines))
        with pytest.raises(ValueError, match="data rows"):
            read_ovf(broken)

    def test_missing_header_detected(self):
        with pytest.raises(ValueError, match="Data Text"):
            read_ovf(io.StringIO("# OOMMF OVF 2.0\n"))

    def test_scalar_valuedim_rejected(self, rng):
        field = self._random_field(rng)
        buffer = io.StringIO()
        write_ovf(buffer, field)
        text = buffer.getvalue().replace("# valuedim: 3", "# valuedim: 1")
        with pytest.raises(ValueError, match="valuedim"):
            read_ovf(io.StringIO(text))

    def test_missing_mesh_field_detected(self, rng):
        field = self._random_field(rng)
        buffer = io.StringIO()
        write_ovf(buffer, field)
        lines = [l for l in buffer.getvalue().splitlines()
                 if not l.startswith("# xnodes")]
        with pytest.raises(ValueError, match="xnodes"):
            read_ovf(io.StringIO("\n".join(lines)))

    def test_bad_column_count_detected(self, rng):
        field = self._random_field(rng)
        buffer = io.StringIO()
        write_ovf(buffer, field)
        lines = buffer.getvalue().splitlines()
        idx = next(i for i, l in enumerate(lines)
                   if l and not l.startswith("#"))
        lines[idx] = "1.0 2.0"
        with pytest.raises(ValueError, match="3 columns"):
            read_ovf(io.StringIO("\n".join(lines)))


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", "1"], ["bbbb", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if "-" not in line)

    def test_title(self):
        text = format_table(["a"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_truth_table_rendering(self):
        text = format_truth_table(
            patterns=[(0, 0), (0, 1)],
            columns=["O1"],
            values=[[1.0], [0.083]],
            input_names=["I1", "I2"])
        assert "0.083" in text
        assert "I1" in text
