"""Tests for the surrogate subsystem (``repro.surrogate``).

Covers the contract promised in docs/SURROGATE.md: the versioned
content-addressed characterization store (identity, idempotent append,
manifest), the characterization job itself, both surrogate model
families (grid-point exactness, interpolation, save/load round-trip),
every accuracy guardrail (unfitted / bounds / residual / sparse), the
surrogate rung of the degradation ladder, and the obs metrics.
"""

import json
import math
import os

import numpy as np
import pytest

from repro import obs
from repro.errors import SurrogateDomainError
from repro.micromag.experiments import run_gate_case, sweep_gate_truth_table
from repro.surrogate import (
    AXIS_NAMES,
    AxisSpec,
    CharacterizationStore,
    MultilinearSurrogate,
    RbfSurrogate,
    characterize,
    characterize_point,
    clear_registry,
    dataset_id,
    evaluate_surrogate,
    fit_surrogate,
    get_model,
    load_model,
    point_key,
    query_point,
    register,
    response_names,
    response_vector,
    thermal_phase_sigma,
)

#: Small but non-degenerate grid: 2 x 3 x 1 x 2 = 12 corners.
SMALL_AXES = (
    AxisSpec("phase_noise", (0.0, 0.2)),
    AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
    AxisSpec("geometry_jitter", (0.0,)),
    AxisSpec("temperature", (0.0, 300.0)),
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """No fitted model leaks between tests (or into other files)."""
    clear_registry()
    yield
    clear_registry()


@pytest.fixture(scope="module")
def xor_records(tmp_path_factory):
    """A characterized small grid for XOR (shared; read-only)."""
    root = str(tmp_path_factory.mktemp("char"))
    store = CharacterizationStore(root)
    dataset = store.dataset("xor", axes=SMALL_AXES, n_trials=2)
    return characterize(dataset), store, dataset


def _linear_record(point, slope=0.1):
    """A synthetic record whose every response is linear in the axes.

    Multilinear interpolation is exact on multilinear data, so fits on
    these records must reproduce midpoints to machine precision.
    """
    s = sum(point.values()) * slope
    patterns = {}
    for bits in ("00", "01", "10", "11"):
        row = {}
        for name in ("O1", "O2"):
            row[name] = {"re": 1.0 + s, "im": 0.5 * s,
                         "margin": 0.4 + s, "logic": 0}
        row["correct"] = True
        patterns[bits] = row
    return {"gate": "xor", "tier": "network", "point": dict(point),
            "patterns": patterns, "min_margin": 0.4 + s,
            "error_rate": abs(s), "n_trials": 0, "seed": 1}


def _linear_grid(values_by_axis):
    import itertools

    names = list(values_by_axis)
    records = []
    for combo in itertools.product(*values_by_axis.values()):
        records.append(_linear_record(dict(zip(names, combo))))
    return records


class TestCharacterizationStore:
    def test_dataset_id_is_content_addressed(self):
        a = dataset_id("maj3", "network", SMALL_AXES, 8, "salt1")
        assert a == dataset_id("maj3", "network", SMALL_AXES, 8, "salt1")
        assert a != dataset_id("maj3", "network", SMALL_AXES, 9, "salt1")
        assert a != dataset_id("maj3", "network", SMALL_AXES, 8, "salt2")
        assert a != dataset_id("xor", "network", SMALL_AXES, 8, "salt1")

    def test_axis_spec_sorts_dedupes_and_validates(self):
        axis = AxisSpec("phase_noise", (0.3, 0.0, 0.3, 0.1))
        assert axis.values == (0.0, 0.1, 0.3)
        with pytest.raises(ValueError, match="unknown axis"):
            AxisSpec("voltage", (0.0,))
        with pytest.raises(ValueError, match="at least one"):
            AxisSpec("phase_noise", ())

    def test_grid_points_cartesian(self, tmp_path):
        store = CharacterizationStore(str(tmp_path))
        dataset = store.dataset("xor", axes=SMALL_AXES, n_trials=2)
        points = dataset.grid_points()
        assert len(points) == dataset.grid_size == 2 * 3 * 1 * 2
        assert len({point_key(p) for p in points}) == len(points)
        assert all(tuple(p) == AXIS_NAMES for p in points)

    def test_append_is_idempotent_and_manifest_tracks(self, tmp_path):
        store = CharacterizationStore(str(tmp_path))
        dataset = store.dataset("xor", axes=SMALL_AXES, n_trials=0)
        points = dataset.grid_points()
        recs = [{"gate": "xor", "tier": "network", "point": p, "x": i}
                for i, p in enumerate(points[:3])]
        assert dataset.append(recs) == 3
        assert dataset.append(recs) == 0          # dedupe by point key
        assert dataset.append(
            [{"gate": "xor", "tier": "network",
              "point": points[3], "x": 99}]) == 1  # incremental append
        manifest = dataset.load_manifest()
        assert manifest["n_records"] == 4
        assert manifest["grid_size"] == 12
        assert manifest["gate"] == "xor"
        assert manifest["dataset_id"] == dataset.id
        assert "repro_version" in manifest and "commit" in manifest
        assert store.manifests()[0]["dataset_id"] == dataset.id

    def test_torn_record_line_is_skipped(self, tmp_path):
        store = CharacterizationStore(str(tmp_path))
        dataset = store.dataset("xor", axes=SMALL_AXES, n_trials=0)
        point = dataset.grid_points()[0]
        dataset.append([{"gate": "xor", "tier": "network",
                         "point": point, "x": 1}])
        with open(dataset.records_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "rec')  # kill -9 mid-write
        records = dataset.records()
        assert len(records) == 1
        assert records[point_key(point)]["x"] == 1

    def test_characterize_fills_and_is_incremental(self, xor_records):
        records, _store, dataset = xor_records
        assert len(records) == dataset.grid_size
        # Second call computes nothing new (all corners on disk).
        assert len(characterize(dataset)) == dataset.grid_size


class TestCharacterizePoint:
    def test_nominal_corner_is_correct_and_deterministic(self):
        a = characterize_point("xor", n_trials=4)
        b = characterize_point("xor", n_trials=4)
        assert a == b                              # derived seed
        assert a["error_rate"] == 0.0
        assert a["min_margin"] > 0.0
        assert set(a["point"]) == set(AXIS_NAMES)
        assert all(row["correct"] for row in a["patterns"].values())

    def test_noise_raises_error_rate(self):
        noisy = characterize_point("xor", phase_noise=1.2, n_trials=32)
        assert noisy["error_rate"] > 0.0
        assert noisy["sigma"] == pytest.approx(1.2)

    def test_thermal_sigma_scales_sqrt(self):
        assert thermal_phase_sigma(0.0) == 0.0
        assert thermal_phase_sigma(300.0) == pytest.approx(0.05)
        assert thermal_phase_sigma(75.0) == pytest.approx(0.025)
        hot = characterize_point("xor", temperature=300.0, n_trials=0)
        assert hot["sigma"] == pytest.approx(0.05)

    def test_llg_tier_rejected(self):
        with pytest.raises(ValueError, match="network.*fdtd"):
            characterize_point("xor", tier="llg")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unknown gate"):
            characterize_point("maj7")


class TestMultilinearModel:
    def test_grid_points_reproduced_exactly(self, xor_records):
        records, _, _ = xor_records
        model = fit_surrogate(records.values())
        names = response_names(next(iter(records.values())))
        for record in records.values():
            got = model.query(record["point"])
            np.testing.assert_allclose(
                got, response_vector(record, names), atol=1e-12)

    def test_midpoints_exact_on_linear_data(self):
        records = _linear_grid({"phase_noise": (0.0, 0.2, 0.4),
                                "temperature": (0.0, 300.0)})
        model = fit_surrogate(records)
        mid = {"phase_noise": 0.1, "temperature": 150.0}
        values = model.query_responses(mid)
        expected = sum(mid.values()) * 0.1
        assert values["error_rate"] == pytest.approx(expected, abs=1e-12)
        assert values["min_margin"] == pytest.approx(0.4 + expected,
                                                     abs=1e-12)
        assert float(model.residual.max()) == pytest.approx(0.0, abs=1e-9)

    def test_missing_axes_default_to_nominal(self):
        records = _linear_grid({"phase_noise": (0.0, 0.2),
                                "temperature": (0.0, 300.0)})
        model = fit_surrogate(records)
        assert (model.query({}) == model.query(
            {"phase_noise": 0.0, "temperature": 0.0})).all()

    def test_bounds_guardrail(self, xor_records):
        records, _, _ = xor_records
        model = fit_surrogate(records.values())
        with pytest.raises(SurrogateDomainError) as err:
            model.query({"phase_noise": 0.5})
        assert err.value.reason == "bounds"
        assert err.value.gate == "xor"
        assert err.value.point["phase_noise"] == 0.5
        with pytest.raises(SurrogateDomainError, match="bounds"):
            model.query({"frequency_detune": -0.1})
        # Numerically *on* the boundary is in-domain.
        model.query({"phase_noise": 0.2})

    def test_residual_guardrail(self):
        # A spiky middle sample makes the linear cross-validation fail
        # there; queries near it must refuse, far from it must answer.
        # The spike also poisons the residual of its grid neighbours
        # (they are predicted *from* it), so the clean cell sits two
        # grid points away.
        records = _linear_grid(
            {"phase_noise": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
             "temperature": (0.0, 300.0)})
        for record in records:
            if record["point"]["phase_noise"] == 0.2:
                record["error_rate"] = 25.0      # wildly off-trend
        model = fit_surrogate(records, residual_threshold=0.25)
        with pytest.raises(SurrogateDomainError) as err:
            model.query({"phase_noise": 0.1, "temperature": 0.0})
        assert err.value.reason == "residual"
        # Cell [0.6, 0.8] has clean corners on both sides: answers.
        model.query({"phase_noise": 0.7, "temperature": 0.0})

    def test_incomplete_grid_suggests_rbf(self):
        records = _linear_grid({"phase_noise": (0.0, 0.2, 0.4),
                                "temperature": (0.0, 300.0)})
        with pytest.raises(ValueError, match="rbf"):
            fit_surrogate(records[:-1])

    def test_save_load_round_trip(self, xor_records, tmp_path):
        records, _, _ = xor_records
        model = fit_surrogate(records.values())
        path = str(tmp_path / "xor.surrogate.npz")
        model.save(path)
        loaded = load_model(path)
        assert isinstance(loaded, MultilinearSurrogate)
        assert loaded.gate == "xor"
        assert loaded.response_names == model.response_names
        point = query_point(phase_noise=0.1, temperature=200.0)
        np.testing.assert_allclose(loaded.query(point),
                                   model.query(point), atol=1e-15)
        assert loaded.query_case((1, 0), point) \
            == model.query_case((1, 0), point)

    def test_query_case_shape_and_decode(self, xor_records):
        records, _, _ = xor_records
        model = fit_surrogate(records.values())
        case = model.query_case((1, 0), {})
        assert case["tier"] == "surrogate"
        assert case["bits"] == [1, 0]
        assert case["expected"] == 1
        assert case["correct"] is True
        assert case["fanout_matched"] is True
        assert set(case["outputs"]) == {"O1", "O2"}
        assert case["surrogate"]["source_tier"] == "network"
        assert 0.0 <= case["surrogate"]["error_rate"] <= 1.0
        # JSON-shaped: a cache/serve layer must be able to ship it.
        json.dumps(case)
        with pytest.raises(ValueError, match="pattern"):
            model.query_case((1, 0, 1), {})

    def test_fit_rejects_empty_and_unknown_kind(self):
        with pytest.raises(ValueError, match="zero records"):
            fit_surrogate([])
        with pytest.raises(ValueError, match="unknown surrogate kind"):
            fit_surrogate(_linear_grid({"phase_noise": (0.0, 0.2)}),
                          kind="spline")


class TestRbfModel:
    def test_fits_scattered_records(self):
        rng = np.random.default_rng(7)
        records = []
        for _ in range(40):
            point = {"phase_noise": float(rng.uniform(0, 0.4)),
                     "temperature": float(rng.uniform(0, 300))}
            records.append(_linear_record(point))
        model = fit_surrogate(records, kind="rbf")
        assert isinstance(model, RbfSurrogate)
        probe = dict(records[11]["point"])
        values = model.query_responses(probe)
        expected = sum(probe.values()) * 0.1
        assert values["error_rate"] == pytest.approx(expected, rel=0.05,
                                                     abs=0.01)

    def test_bounds_and_sparse_guardrails(self):
        # Two tight clusters: every sample has a close neighbour (so
        # the sparse radius stays small), but the gap between the
        # clusters is inside the bounding box and far from all samples.
        records = [_linear_record({"phase_noise": p, "temperature": t})
                   for p in (0.0, 0.05, 0.1, 0.9, 0.95, 1.0)
                   for t in (0.0, 300.0)]
        model = fit_surrogate(records, kind="rbf")
        with pytest.raises(SurrogateDomainError, match="bounds"):
            model.query({"phase_noise": 5.0, "temperature": 0.0})
        with pytest.raises(SurrogateDomainError) as err:
            model.query({"phase_noise": 0.5, "temperature": 0.0})
        assert err.value.reason == "sparse"
        model.query({"phase_noise": 0.06, "temperature": 10.0})

    def test_save_load_round_trip(self, tmp_path):
        records = [_linear_record({"phase_noise": p, "temperature": t})
                   for p in (0.0, 0.1, 0.2) for t in (0.0, 150.0, 300.0)]
        model = fit_surrogate(records, kind="rbf")
        path = str(tmp_path / "xor-rbf.npz")
        model.save(path)
        loaded = load_model(path)
        assert isinstance(loaded, RbfSurrogate)
        probe = {"phase_noise": 0.15, "temperature": 100.0}
        np.testing.assert_allclose(loaded.query(probe),
                                   model.query(probe), atol=1e-15)


class TestSurrogateTier:
    def test_unfitted_raises_typed_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SURROGATE_DIR", str(tmp_path))
        with pytest.raises(SurrogateDomainError) as err:
            evaluate_surrogate("maj3", (0, 0, 0))
        assert err.value.reason == "unfitted"
        assert "characterize" in str(err.value)

    def test_registry_beats_disk_and_get_model_loads(self, xor_records,
                                                     monkeypatch):
        records, store, _ = xor_records
        model = fit_surrogate(records.values())
        model.save(store.model_path("xor"))
        monkeypatch.setenv("REPRO_SURROGATE_DIR", store.root)
        loaded = get_model("xor")              # lazy disk load
        assert loaded.gate == "xor"
        assert get_model("xor") is loaded      # cached in the registry
        register(model)
        assert get_model("xor") is model       # explicit register wins

    def test_in_domain_matches_network_tier(self, xor_records):
        records, _, _ = xor_records
        register(fit_surrogate(records.values()))
        for bits in ((0, 0), (0, 1), (1, 0), (1, 1)):
            via_surrogate = run_gate_case("xor", bits, tier="surrogate")
            via_network = run_gate_case("xor", bits, tier="network",
                                        calibrated=False)
            assert via_surrogate["tier"] == "surrogate"
            assert "degraded_from" not in via_surrogate
            for name in via_network["outputs"]:
                assert (via_surrogate["outputs"][name]["logic"]
                        == via_network["outputs"][name]["logic"])
            np.testing.assert_allclose(via_surrogate["normalized"],
                                       via_network["normalized"],
                                       atol=1e-9)

    def test_out_of_domain_falls_back_identically(self, xor_records):
        records, _, _ = xor_records
        register(fit_surrogate(records.values()))
        fallback = run_gate_case("xor", (1, 0), tier="surrogate",
                                 frequency=12e9)   # outside +-2 % grid
        direct = run_gate_case("xor", (1, 0), tier="network",
                               frequency=12e9)
        assert fallback["tier"] == "network"
        assert fallback["degraded_from"] == "surrogate"
        assert fallback["degradation_path"] == ["surrogate", "network"]
        assert fallback["outputs"] == direct["outputs"]
        assert fallback["normalized"] == direct["normalized"]

    def test_remediate_false_propagates(self, xor_records):
        records, _, _ = xor_records
        register(fit_surrogate(records.values()))
        with pytest.raises(SurrogateDomainError, match="bounds"):
            run_gate_case("xor", (1, 0), tier="surrogate",
                          frequency=12e9, remediate=False)

    def test_physical_tiers_reject_surrogate_axes(self):
        with pytest.raises(ValueError, match="characterization axes"):
            run_gate_case("xor", (1, 0), tier="network", phase_noise=0.1)

    def test_interpolated_point_queries(self, xor_records):
        records, _, _ = xor_records
        register(fit_surrogate(records.values()))
        case = run_gate_case("xor", (0, 1), tier="surrogate",
                             phase_noise=0.1, temperature=150.0)
        assert case["tier"] == "surrogate"
        assert case["correct"]

    def test_sweep_through_engine(self, xor_records):
        records, store, _ = xor_records
        fit_surrogate(records.values()).save(store.model_path("xor"))
        os.environ["REPRO_SURROGATE_DIR"] = store.root
        try:
            sweep = sweep_gate_truth_table("xor", tier="surrogate",
                                           cache=None)
            assert sweep.all_correct
            assert {case["tier"] for case in sweep.cases.values()} \
                == {"surrogate"}
        finally:
            del os.environ["REPRO_SURROGATE_DIR"]

    def test_query_point_maps_frequency_to_detune(self):
        point = query_point(frequency=10.2e9, phase_noise=0.1)
        assert point["frequency_detune"] == pytest.approx(0.02)
        assert point["phase_noise"] == 0.1
        assert "frequency_detune" not in query_point()

    def test_metrics_hit_and_fallback(self, xor_records):
        records, _, _ = xor_records
        register(fit_surrogate(records.values()))
        obs.enable()
        try:
            evaluate_surrogate("xor", (1, 0))
            with pytest.raises(SurrogateDomainError):
                evaluate_surrogate("xor", (1, 0),
                                   {"phase_noise": 9.0})
            snapshot = obs.metrics_snapshot()
            assert snapshot["counters"]["surrogate.hit"] == 1
            assert snapshot["counters"]["surrogate.fallback"] == 1
            assert snapshot["histograms"]["surrogate.query_ms"]["count"] \
                == 1
        finally:
            obs.disable()
            obs.reset_metrics()
            obs.drain_spans()

    def test_maj3_end_to_end(self, tmp_path):
        store = CharacterizationStore(str(tmp_path))
        dataset = store.dataset("maj3", axes=(
            AxisSpec("phase_noise", (0.0, 0.2)),
            AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
            AxisSpec("geometry_jitter", (0.0,)),
            AxisSpec("temperature", (0.0,))), n_trials=2)
        register(fit_surrogate(characterize(dataset).values()))
        for bits in ((0, 0, 0), (1, 1, 0), (1, 0, 1), (1, 1, 1)):
            case = run_gate_case("maj3", bits, tier="surrogate")
            reference = run_gate_case("maj3", bits, tier="network",
                                      calibrated=False)
            assert case["tier"] == "surrogate"
            assert case["correct"] == reference["correct"] is True
            assert [case["outputs"][n]["logic"]
                    for n in sorted(case["outputs"])] \
                == [reference["outputs"][n]["logic"]
                    for n in sorted(reference["outputs"])]
