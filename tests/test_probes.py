"""Probe / TimeTrace tests (lock-in detection machinery)."""

import math

import numpy as np
import pytest

from repro.micromag import Mesh, Probe, TimeTrace, rectangle
from repro.micromag.geometry import rasterize


class TestTimeTrace:
    def _cosine_trace(self, amplitude, phase, frequency=10e9,
                      n_periods=8, samples_per_period=32):
        dt = 1.0 / (frequency * samples_per_period)
        t = np.arange(n_periods * samples_per_period) * dt
        v = amplitude * np.cos(2 * math.pi * frequency * t + phase)
        return TimeTrace(t, v)

    def test_demodulate_recovers_amplitude_phase(self):
        trace = self._cosine_trace(0.37, 1.1)
        amp, phase = trace.demodulate(10e9)
        assert amp == pytest.approx(0.37, rel=1e-6)
        assert phase == pytest.approx(1.1, abs=1e-6)

    def test_demodulate_logic_phases(self):
        for value, expected in ((0, 0.0), (1, math.pi)):
            trace = self._cosine_trace(1.0, expected)
            _, phase = trace.demodulate(10e9)
            assert math.isclose(math.cos(phase), math.cos(expected),
                                abs_tol=1e-9)

    def test_demodulate_rejects_short_trace(self):
        trace = TimeTrace(np.array([0.0, 1e-12]), np.array([0.0, 0.1]))
        with pytest.raises(ValueError):
            trace.demodulate(10e9)

    def test_window(self):
        trace = self._cosine_trace(1.0, 0.0)
        sub = trace.window(1e-10, 3e-10)
        assert sub.times[0] >= 1e-10
        assert sub.times[-1] <= 3e-10
        assert len(sub.times) > 0

    def test_rms_of_cosine(self):
        trace = self._cosine_trace(2.0, 0.0)
        assert trace.rms() == pytest.approx(2.0 / math.sqrt(2.0), rel=1e-3)

    def test_envelope_max(self):
        trace = self._cosine_trace(1.5, 0.3)
        assert trace.envelope_max() == pytest.approx(1.5, rel=1e-2)

    def test_spectrum_peak_at_drive(self):
        trace = self._cosine_trace(1.0, 0.0, n_periods=32)
        freqs, amps = trace.spectrum()
        peak = freqs[np.argmax(amps)]
        assert peak == pytest.approx(10e9, rel=0.05)

    def test_spectrum_requires_uniform_sampling(self):
        t = np.array([0.0, 1e-12, 3e-12, 4e-12])
        with pytest.raises(ValueError, match="uniform"):
            TimeTrace(t, np.zeros(4)).spectrum()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeTrace(np.zeros(4), np.zeros(5))


class TestProbe:
    def test_records_region_average(self, small_mesh):
        probe = Probe("P", rectangle(0, 0, 20e-9, 40e-9), component=2)
        probe.bind(small_mesh)
        m = small_mesh.zeros_vector()
        m[2, 0, :, :4] = 2.0  # only inside the region
        probe.record(0.0, m)
        trace = probe.trace
        assert trace.values[0] == pytest.approx(2.0)

    def test_respects_geometry_mask(self, small_mesh):
        geometry = np.zeros(small_mesh.scalar_shape, dtype=bool)
        geometry[0, :4, :4] = True
        probe = Probe("P", rectangle(0, 0, 40e-9, 40e-9))
        probe.bind(small_mesh, geometry)
        m = small_mesh.zeros_vector()
        m[0][geometry] = 1.0
        m[0][~geometry] = -7.0  # outside geometry, must be ignored
        probe.record(0.0, m)
        assert probe.trace.values[0] == pytest.approx(1.0)

    def test_unbound_record_raises(self, small_mesh):
        probe = Probe("P", rectangle(0, 0, 20e-9, 20e-9))
        with pytest.raises(RuntimeError):
            probe.record(0.0, small_mesh.zeros_vector())

    def test_empty_region_raises(self, small_mesh):
        probe = Probe("P", rectangle(1e-6, 1e-6, 2e-6, 2e-6))
        with pytest.raises(ValueError, match="covers no cells"):
            probe.bind(small_mesh)

    def test_reset_keeps_binding(self, small_mesh):
        probe = Probe("P", rectangle(0, 0, 20e-9, 20e-9))
        probe.bind(small_mesh)
        probe.record(0.0, small_mesh.zeros_vector())
        probe.reset()
        assert len(probe.trace.times) == 0
        probe.record(1e-12, small_mesh.zeros_vector())  # still bound
        assert len(probe.trace.times) == 1

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Probe("P", rectangle(0, 0, 1e-9, 1e-9), component=3)
