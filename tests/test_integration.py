"""Cross-tier integration tests.

These are the tests that justify the tier substitution documented in
DESIGN.md: the analytic network model, the scalar-wave FDTD solver and
the micromagnetic LLG solver must agree on the logic-level behaviour of
the interference structures.  They are slower than the unit tests
(seconds each) but still laptop-friendly.
"""

import math

import numpy as np
import pytest

from repro.core import TriangleMajorityGate, TriangleXorGate
from repro.core.logic import input_patterns, majority, xor
from repro.fdtd import ScalarWaveSimulator, WaveSource, run_steady_state
from repro.micromag import (
    Envelope,
    ExcitationSource,
    Mesh,
    Probe,
    Simulation,
    rectangle,
)
from repro.physics import FECOB, DispersionRelation, FilmStack


class TestXorFdtdVsNetwork:
    """The XOR gate on the real (rasterised) geometry."""

    @pytest.fixture(scope="class")
    def xor_tables(self):
        gate = TriangleXorGate()
        return (gate.normalized_output_table(backend="network"),
                gate.normalized_output_table(backend="fdtd"))

    def test_logic_agrees(self, xor_tables):
        network, fdtd = xor_tables
        for bits in input_patterns(2):
            net_high = network[bits][0] > 0.5
            fdtd_high = fdtd[bits][0] > 0.5
            assert net_high == fdtd_high, bits

    def test_fdtd_contrast_sufficient(self, xor_tables):
        _, fdtd = xor_tables
        # Unanimous ~1, antiphase well below the 0.5 threshold.
        assert fdtd[(0, 0)][0] == pytest.approx(1.0, abs=0.05)
        assert fdtd[(1, 1)][0] == pytest.approx(1.0, abs=0.05)
        assert fdtd[(0, 1)][0] < 0.5
        assert fdtd[(1, 0)][0] < 0.5

    def test_fanout_symmetry_on_geometry(self, xor_tables):
        _, fdtd = xor_tables
        for bits, (o1, o2) in fdtd.items():
            assert o1 == pytest.approx(o2, abs=0.05), bits

    def test_gate_decodes_all_patterns_via_fdtd(self):
        gate = TriangleXorGate()
        for bits in input_patterns(2):
            result = gate.evaluate(bits, backend="fdtd")
            assert result.expected == xor(*bits)
            assert result.correct, bits


class TestMajorityFdtdSpotChecks:
    """Full-geometry MAJ3 cases (one per structural class, for speed;
    the complete 8-pattern FDTD table is exercised by the benches)."""

    @pytest.fixture(scope="class")
    def gate(self):
        return TriangleMajorityGate()

    @pytest.mark.parametrize("bits", [(0, 0, 0), (1, 1, 0), (0, 1, 1)])
    def test_pattern_decodes(self, gate, bits):
        result = gate.evaluate(bits, backend="fdtd")
        assert result.expected == majority(*bits)
        assert result.correct, bits
        assert result.fanout_matched, bits

    def test_field_map_shape_and_content(self, gate):
        env = gate.field_map((0, 0, 0))
        fab = gate.fabricated
        assert env.shape == fab.mask.shape
        # Field confined to the waveguides.
        assert np.all(np.abs(env)[~fab.mask] == 0.0)
        # Waves present in the guides.
        assert np.abs(env)[fab.mask].max() > 0.01


class TestMicromagneticWaveguide:
    """LLG-tier validation: spin waves in the paper's FeCoB film."""

    def _waveguide_sim(self, alpha=0.004, temperature=0.0, rng=None):
        # 600 nm x 30 nm x 1 nm strip at 5 nm cells: small but long
        # enough to observe propagation.
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(120, 6, 1))
        sim = Simulation(mesh, FECOB.with_damping(alpha),
                         demag="thin_film", temperature=temperature,
                         absorber_width=100e-9, absorber_axes=(0,),
                         rng=rng)
        sim.initialize((0, 0, 1))
        return sim, mesh

    def test_spin_wave_propagates(self):
        sim, mesh = self._waveguide_sim()
        f_drive = 18e9  # above the ~3.7 GHz gap, comfortably propagating
        sim.add_source(ExcitationSource(
            region=rectangle(120e-9, 0, 140e-9, 30e-9),
            amplitude=8e3, frequency=f_drive))
        near = Probe("near", rectangle(180e-9, 0, 200e-9, 30e-9))
        far = Probe("far", rectangle(320e-9, 0, 340e-9, 30e-9))
        sim.add_probe(near)
        sim.add_probe(far)
        sim.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
        amp_near, _ = near.trace.window(0.6e-9).demodulate(f_drive)
        amp_far, _ = far.trace.window(0.6e-9).demodulate(f_drive)
        assert amp_near > 1e-5          # wave arrived near the antenna
        assert amp_far > 0.05 * amp_near  # and kept propagating

    def test_phase_encoding_survives_propagation(self):
        # Two runs differing only in source logic phase: the detected
        # phases must differ by pi -- the foundation of the encoding.
        phases = []
        f_drive = 18e9
        for bit in (0, 1):
            sim, mesh = self._waveguide_sim()
            sim.add_source(ExcitationSource.for_logic(
                rectangle(120e-9, 0, 140e-9, 30e-9), bit,
                amplitude=8e3, frequency=f_drive))
            probe = Probe("P", rectangle(300e-9, 0, 320e-9, 30e-9))
            sim.add_probe(probe)
            sim.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
            _, phase = probe.trace.window(0.6e-9).demodulate(f_drive)
            phases.append(phase)
        diff = abs(math.remainder(phases[1] - phases[0], 2 * math.pi))
        assert diff == pytest.approx(math.pi, abs=0.3)

    def test_below_gap_drive_does_not_propagate(self):
        # Drive below the FVSW gap: evanescent, far probe stays quiet
        # at the drive frequency relative to an above-gap drive of the
        # same strength.  A slow turn-on keeps the drive narrowband
        # (an abrupt start would radiate above-gap transients).
        amplitudes = []
        for f_drive in (2.5e9, 18e9):  # gap is ~3.7 GHz
            sim, mesh = self._waveguide_sim()
            sim.add_source(ExcitationSource(
                region=rectangle(120e-9, 0, 140e-9, 30e-9),
                amplitude=8e3, frequency=f_drive,
                envelope=Envelope(start=0.0, rise=0.5e-9)))
            probe = Probe("far", rectangle(400e-9, 0, 420e-9, 30e-9))
            sim.add_probe(probe)
            sim.run(duration=2.0e-9, dt=2.5e-14, sample_every=4)
            amp, _ = probe.trace.window(1.0e-9).demodulate(f_drive)
            amplitudes.append(amp)
        assert amplitudes[0] < 0.2 * amplitudes[1]

    def test_thermal_noise_does_not_flip_phase(self, rng):
        # Section IV-D: thermal noise has limited impact.  At 300 K the
        # phase detected downstream must still encode the input bit.
        f_drive = 18e9
        sim, mesh = self._waveguide_sim(temperature=300.0, rng=rng)
        sim.add_source(ExcitationSource.for_logic(
            rectangle(120e-9, 0, 140e-9, 30e-9), 1,
            amplitude=8e3, frequency=f_drive))
        probe = Probe("P", rectangle(300e-9, 0, 320e-9, 30e-9))
        sim.add_probe(probe)
        sim.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
        _, phase_hot = probe.trace.window(0.6e-9).demodulate(f_drive)

        sim0, _ = self._waveguide_sim()
        sim0.add_source(ExcitationSource.for_logic(
            rectangle(120e-9, 0, 140e-9, 30e-9), 1,
            amplitude=8e3, frequency=f_drive))
        probe0 = Probe("P", rectangle(300e-9, 0, 320e-9, 30e-9))
        sim0.add_probe(probe0)
        sim0.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
        _, phase_cold = probe0.trace.window(0.6e-9).demodulate(f_drive)
        diff = abs(math.remainder(phase_hot - phase_cold, 2 * math.pi))
        assert diff < math.pi / 2  # same decoded bit


class TestDispersionAgainstSolver:
    """The LLG solver must reproduce the analytic FVSW dispersion."""

    def test_uniform_mode_frequency(self):
        # FMR (k = 0) of the PMA film: f = gamma mu0 (H_ani - Ms) / 2pi.
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(16, 16, 1))
        sim = Simulation(mesh, FECOB.with_damping(0.0), demag="thin_film")
        sim.initialize((0.05, 0.0, 1.0))
        probe = Probe("P", rectangle(0, 0, 80e-9, 80e-9))
        sim.add_probe(probe)
        sim.run(duration=2.0e-9, dt=5e-14)
        from repro.micromag import dominant_frequency
        trace = probe.trace
        f_sim = dominant_frequency(trace.values,
                                   trace.times[1] - trace.times[0])
        film = FilmStack(material=FECOB, thickness=1e-9)
        f_expected = DispersionRelation(film).gap_frequency()
        assert f_sim == pytest.approx(f_expected, rel=0.05)
