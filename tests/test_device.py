"""4-stage device-model tests (Figure 2a abstraction)."""

import pytest

from repro.core import (
    DetectionMethod,
    SpinWaveDevice,
    Transducer,
    ladder_maj3_device,
    ladder_xor_device,
    triangle_maj3_device,
    triangle_xor_device,
)


class TestTransducer:
    def test_roles(self):
        assert Transducer("I1", "excite").role == "excite"
        with pytest.raises(ValueError):
            Transducer("X", "amplify")


class TestDeviceInvariants:
    def test_cell_counts_match_table_iii(self):
        assert triangle_maj3_device().n_cells == 5
        assert triangle_xor_device().n_cells == 4
        assert ladder_maj3_device().n_cells == 6
        assert ladder_xor_device().n_cells == 6

    def test_excitation_split(self):
        dev = triangle_maj3_device()
        assert dev.n_excitation_cells == 3
        assert dev.n_detection_cells == 2

    def test_detection_methods(self):
        assert triangle_maj3_device().detection is DetectionMethod.PHASE
        assert triangle_xor_device().detection is DetectionMethod.THRESHOLD

    def test_equal_energy_flags(self):
        # The triangle's selling point vs the ladder (Section IV-D).
        assert triangle_maj3_device().equal_energy_inputs
        assert not ladder_maj3_device().equal_energy_inputs

    def test_fanout_two_everywhere(self):
        for device in (triangle_maj3_device(), triangle_xor_device(),
                       ladder_maj3_device(), ladder_xor_device()):
            assert device.fan_out == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SpinWaveDevice(
                name="bad",
                transducers=[Transducer("I1", "excite"),
                             Transducer("I1", "excite"),
                             Transducer("O1", "detect")],
                detection=DetectionMethod.PHASE)

    def test_fanout_needs_detectors(self):
        with pytest.raises(ValueError, match="fan-out cannot exceed"):
            SpinWaveDevice(
                name="bad",
                transducers=[Transducer("I1", "excite"),
                             Transducer("O1", "detect")],
                detection=DetectionMethod.PHASE,
                fan_out=2)

    def test_fanout_positive(self):
        with pytest.raises(ValueError):
            SpinWaveDevice(name="bad",
                           transducers=[Transducer("O1", "detect")],
                           detection=DetectionMethod.PHASE, fan_out=0)
