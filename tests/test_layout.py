"""Gate-layout tests: the dimensioning rules of Section III / IV-A."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GateDimensions,
    is_phase_inverting,
    is_phase_preserving,
    maj3_layout,
    paper_maj3_dimensions,
    paper_xor_dimensions,
    segment_length,
    validate_phase_design,
    xor_layout,
)
from repro.core.layout import PAPER_WAVELENGTH, PAPER_WIDTH


class TestSegmentLength:
    def test_integer_multiples(self):
        assert segment_length(6, 55e-9) == pytest.approx(330e-9)
        assert segment_length(16, 55e-9) == pytest.approx(880e-9)

    def test_inverting_adds_half(self):
        assert segment_length(1, 55e-9, inverted=True) == pytest.approx(
            82.5e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_length(-1, 55e-9)
        with pytest.raises(ValueError):
            segment_length(1, 0.0)

    @given(st.integers(min_value=0, max_value=40))
    def test_preserving_predicate(self, n):
        lam = 55e-9
        assert is_phase_preserving(segment_length(n, lam), lam)
        assert not is_phase_inverting(segment_length(n, lam), lam)

    @given(st.integers(min_value=0, max_value=40))
    def test_inverting_predicate(self, n):
        lam = 55e-9
        length = segment_length(n, lam, inverted=True)
        assert is_phase_inverting(length, lam)
        assert not is_phase_preserving(length, lam)


class TestPaperDimensions:
    def test_maj3_matches_section_iv_a(self):
        dims = paper_maj3_dimensions()
        assert dims.d1 == pytest.approx(330e-9)
        assert dims.d2 == pytest.approx(880e-9)
        assert dims.d3 == pytest.approx(220e-9)
        assert dims.d4 == pytest.approx(55e-9)
        assert dims.wavelength == pytest.approx(55e-9)
        assert dims.width == pytest.approx(50e-9)

    def test_xor_matches_section_iv_a(self):
        dims = paper_xor_dimensions()
        assert dims.d1 == pytest.approx(330e-9)
        assert dims.d2_xor == pytest.approx(40e-9)

    def test_inverted_output_option(self):
        dims = paper_maj3_dimensions(invert_output=True)
        assert dims.d4 == pytest.approx(82.5e-9)

    def test_rescaling(self):
        dims = paper_maj3_dimensions(wavelength=110e-9, width=100e-9)
        assert dims.d1 == pytest.approx(660e-9)
        assert dims.d2 == pytest.approx(1760e-9)

    def test_width_constraint_enforced(self):
        # Section III-A: width must be <= wavelength.
        with pytest.raises(ValueError, match="must not exceed"):
            GateDimensions(wavelength=55e-9, width=60e-9, d1=330e-9)


class TestMaj3Layout:
    def test_all_phase_checks_pass(self):
        checks = validate_phase_design(maj3_layout())
        assert all(checks.values()), checks

    def test_node_inventory(self):
        layout = maj3_layout()
        assert layout.input_names == ["I1", "I2", "I3"]
        assert layout.output_names == ["O1", "O2"]
        for node in ("M", "C", "K1", "K2", "B1", "B2"):
            assert node in layout.nodes

    def test_segment_lengths_match_dimensions(self):
        layout = maj3_layout()
        dims = layout.dimensions
        assert layout.path_length("I1", "M") == pytest.approx(dims.d1)
        assert layout.path_length("M", "C") == pytest.approx(dims.stem)
        assert layout.path_length("C", "K1") == pytest.approx(dims.d1)
        assert layout.path_length("I3", "K1") == pytest.approx(dims.d2)
        assert layout.path_length("K1", "B1") == pytest.approx(dims.d3)
        assert layout.path_length("B1", "O1") == pytest.approx(dims.d4)

    def test_mirror_symmetry(self):
        layout = maj3_layout()
        for upper, lower in (("I1", "I2"), ("K1", "K2"), ("B1", "B2"),
                             ("O1", "O2")):
            xu, yu = layout.nodes[upper]
            xl, yl = layout.nodes[lower]
            assert xu == pytest.approx(xl)
            assert yu == pytest.approx(-yl)

    def test_inverted_output_validates(self):
        layout = maj3_layout(paper_maj3_dimensions(invert_output=True))
        checks = validate_phase_design(layout)
        assert all(checks.values()), checks

    def test_rejects_xor_dimensions(self):
        with pytest.raises(ValueError, match="d2, d3 and d4"):
            maj3_layout(paper_xor_dimensions())

    def test_rejects_too_short_d2(self):
        dims = GateDimensions(wavelength=55e-9, width=50e-9,
                              d1=330e-9, d2=110e-9, d3=220e-9, d4=55e-9,
                              stem=110e-9)
        with pytest.raises(ValueError, match="d2 must exceed"):
            maj3_layout(dims)

    def test_translated_preserves_lengths(self):
        layout = maj3_layout()
        moved = layout.translated(1e-6, -2e-6)
        assert moved.path_length("I1", "M") == pytest.approx(
            layout.path_length("I1", "M"))
        assert moved.nodes["C"][0] == pytest.approx(
            layout.nodes["C"][0] + 1e-6)

    def test_bounding_box_contains_all_nodes(self):
        layout = maj3_layout()
        x0, y0, x1, y1 = layout.bounding_box(margin=10e-9)
        for x, y in layout.nodes.values():
            assert x0 < x < x1
            assert y0 < y < y1


class TestXorLayout:
    def test_all_phase_checks_pass(self):
        checks = validate_phase_design(xor_layout())
        assert all(checks.values()), checks

    def test_no_third_input(self):
        layout = xor_layout()
        assert layout.input_names == ["I1", "I2"]
        assert "I3" not in layout.nodes

    def test_output_close_to_corner(self):
        # Threshold detection wants the detector as close as possible.
        layout = xor_layout()
        assert layout.path_length("K1", "O1") == pytest.approx(40e-9)

    def test_rejects_maj_dimensions(self):
        with pytest.raises(ValueError, match="d2_xor"):
            xor_layout(paper_maj3_dimensions())

    def test_path_length_multi_hop(self):
        layout = xor_layout()
        total = layout.path_length("I1", "M", "C", "K1", "O1")
        dims = layout.dimensions
        assert total == pytest.approx(
            dims.d1 + dims.stem + dims.d1 + dims.d2_xor)

    def test_path_length_needs_two_nodes(self):
        with pytest.raises(ValueError):
            xor_layout().path_length("I1")


class TestScaling:
    @given(st.floats(min_value=20e-9, max_value=200e-9))
    @settings(max_examples=20)
    def test_any_wavelength_validates(self, lam):
        dims = paper_maj3_dimensions(wavelength=lam, width=0.9 * lam)
        checks = validate_phase_design(maj3_layout(dims))
        assert all(checks.values())
