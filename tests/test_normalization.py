"""Amplitude-normalizer tests (the ref [8] block)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Netlist, full_adder_netlist, parity_chain_netlist
from repro.core.normalization import (
    AmplitudeNormalizer,
    NormalizerSpec,
    needs_normalizer,
    normalization_cost,
    plan_normalizers,
)
from repro.physics import Wave

F = 10e9


class TestSpec:
    def test_defaults(self):
        spec = NormalizerSpec()
        assert spec.output_amplitude == 1.0
        assert spec.energy == pytest.approx(3.44e-18)
        assert spec.delay == pytest.approx(0.42e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NormalizerSpec(output_amplitude=0.0)
        with pytest.raises(ValueError):
            NormalizerSpec(min_input=0.5, max_input=0.1)


class TestNormalizer:
    def test_standardises_amplitude(self):
        block = AmplitudeNormalizer()
        out = block.normalize(Wave(0.3, 1.2, F))
        assert out.amplitude == pytest.approx(1.0)
        assert out.phase == pytest.approx(1.2)

    @given(st.floats(min_value=0.06, max_value=9.0),
           st.floats(min_value=-math.pi, max_value=math.pi))
    @settings(max_examples=40)
    def test_phase_preserved_across_window(self, amplitude, phase):
        block = AmplitudeNormalizer()
        out = block.normalize(Wave(amplitude, phase, F))
        assert out.amplitude == pytest.approx(1.0)
        assert math.isclose(math.cos(out.phase), math.cos(phase),
                            abs_tol=1e-9)

    def test_lost_wave_rejected(self):
        block = AmplitudeNormalizer()
        with pytest.raises(ValueError, match="below"):
            block.normalize(Wave(0.01, 0.0, F))

    def test_overdriven_wave_rejected(self):
        block = AmplitudeNormalizer(NormalizerSpec(max_input=2.0))
        with pytest.raises(ValueError, match="above"):
            block.normalize(Wave(3.0, 0.0, F))

    def test_bundle(self):
        block = AmplitudeNormalizer()
        outs = block.normalize_many([Wave(0.3, 0.0, F),
                                     Wave(2.0, math.pi, F)])
        assert [w.amplitude for w in outs] == [1.0, 1.0]


class TestNeedsNormalizer:
    def test_rules(self):
        assert not needs_normalizer("phase", "phase")
        assert not needs_normalizer("threshold", "phase")
        assert needs_normalizer("phase", "threshold")
        assert needs_normalizer("threshold", "threshold")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            needs_normalizer("phase", "telepathy")


class TestPlanning:
    def test_parity_chain_needs_normalizers(self):
        # XOR feeding XOR: every internal link needs one.
        net = parity_chain_netlist(4)
        links = plan_normalizers(net)
        # xor2 and xor3 each consume one gate-driven net.
        assert len(links) == 2
        consumers = {gate for _net, gate in links}
        assert consumers == {"xor2", "xor3"}

    def test_full_adder_sum_chain(self):
        # xor2 consumes "ab" (gate-driven) and "c1" (splitter from a
        # primary input -> no normalizer).
        links = plan_normalizers(full_adder_netlist())
        assert ("ab", "xor2") in links
        assert all(net != "c1" for net, _g in links)

    def test_pure_majority_circuit_needs_none(self):
        net = Netlist("maj_only")
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_output("y")
        net.add_gate("m", "MAJ3", ["a", "b", "c"], ["y", None])
        assert plan_normalizers(net) == []

    def test_cost(self):
        count, energy, delay = normalization_cost(parity_chain_netlist(5))
        assert count == 3
        assert energy == pytest.approx(3 * 3.44e-18)
        assert delay == pytest.approx(0.42e-9)

    def test_cost_zero_when_unneeded(self):
        net = Netlist("maj_only")
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_output("y")
        net.add_gate("m", "MAJ3", ["a", "b", "c"], ["y", None])
        count, energy, delay = normalization_cost(net)
        assert (count, energy, delay) == (0, 0.0, 0.0)
