"""Plane-wave algebra tests: the interference logic of Section II-B."""

import cmath
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    Wave,
    interference_kind,
    phase_distance,
    standing_pattern,
    superpose,
    wrap_phase,
)

F = 10e9  # the paper's operating frequency

phases = st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


class TestWrapPhase:
    @given(phases)
    def test_range(self, phi):
        wrapped = wrap_phase(phi)
        assert -math.pi < wrapped <= math.pi

    @given(phases)
    def test_idempotent(self, phi):
        once = wrap_phase(phi)
        assert wrap_phase(once) == pytest.approx(once)

    @given(phases)
    def test_equivalence_mod_2pi(self, phi):
        assert math.isclose(math.cos(wrap_phase(phi)), math.cos(phi),
                            abs_tol=1e-9)
        assert math.isclose(math.sin(wrap_phase(phi)), math.sin(phi),
                            abs_tol=1e-9)

    def test_pi_representative(self):
        assert wrap_phase(math.pi) == pytest.approx(math.pi)
        assert wrap_phase(-math.pi) == pytest.approx(math.pi)


class TestPhaseDistance:
    @given(phases, phases)
    def test_symmetric(self, a, b):
        assert phase_distance(a, b) == pytest.approx(phase_distance(b, a))

    @given(phases)
    def test_self_distance_zero(self, a):
        assert phase_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    @given(phases)
    def test_max_is_pi(self, a):
        assert phase_distance(a, a + math.pi) == pytest.approx(math.pi)

    @given(phases, phases)
    def test_bounded(self, a, b):
        assert 0.0 <= phase_distance(a, b) <= math.pi + 1e-12


class TestWaveConstruction:
    def test_logic_encoding(self):
        w0 = Wave.logic(0, F)
        w1 = Wave.logic(1, F)
        assert w0.phase == pytest.approx(0.0)
        assert w1.phase == pytest.approx(math.pi)
        assert w0.amplitude == w1.amplitude == 1.0

    def test_rejects_bad_logic_value(self):
        with pytest.raises(ValueError):
            Wave.logic(2, F)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            Wave(amplitude=-1.0, phase=0.0, frequency=F)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Wave(amplitude=1.0, phase=0.0, frequency=0.0)

    def test_from_complex_round_trip(self):
        z = 0.7 * cmath.exp(1j * 2.1)
        w = Wave.from_complex(z, F)
        assert w.envelope == pytest.approx(z)


class TestPropagation:
    def test_integer_wavelength_preserves_phase(self):
        lam = 55e-9
        k = 2.0 * math.pi / lam
        w = Wave.logic(1, F)
        out = w.propagate(6 * lam, k)
        assert out.phase == pytest.approx(w.phase, abs=1e-9)

    def test_half_wavelength_inverts(self):
        lam = 55e-9
        k = 2.0 * math.pi / lam
        w = Wave.logic(0, F)
        out = w.propagate(6.5 * lam, k)
        assert phase_distance(out.phase, math.pi) == pytest.approx(
            0.0, abs=1e-9)

    def test_attenuation_length(self):
        w = Wave.logic(0, F)
        out = w.propagate(2e-6, 1e8, attenuation_length=2e-6)
        assert out.amplitude == pytest.approx(math.exp(-1.0))

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            Wave.logic(0, F).propagate(-1e-9, 1e8)

    @given(st.floats(min_value=0.0, max_value=1e-5),
           st.floats(min_value=1e6, max_value=1e9))
    @settings(max_examples=30)
    def test_amplitude_never_grows(self, distance, k):
        out = Wave.logic(0, F).propagate(distance, k,
                                         attenuation_length=3e-6)
        assert out.amplitude <= 1.0 + 1e-12


class TestSuperposition:
    def test_constructive(self):
        total = superpose([Wave.logic(0, F), Wave.logic(0, F)])
        assert total.amplitude == pytest.approx(2.0)
        assert total.phase == pytest.approx(0.0)

    def test_destructive(self):
        total = superpose([Wave.logic(0, F), Wave.logic(1, F)])
        assert total.amplitude == pytest.approx(0.0, abs=1e-12)

    def test_majority_phase_three_waves(self):
        # Two zeros and a one -> amplitude 1, phase 0 (majority = 0).
        total = superpose([Wave.logic(0, F), Wave.logic(0, F),
                           Wave.logic(1, F)])
        assert total.amplitude == pytest.approx(1.0)
        assert phase_distance(total.phase, 0.0) < 1e-9

    @given(st.lists(st.sampled_from([0, 1]), min_size=3, max_size=3))
    def test_three_wave_majority_always(self, bits):
        total = superpose([Wave.logic(b, F) for b in bits])
        majority = int(sum(bits) > 1)
        expected_phase = math.pi if majority else 0.0
        assert phase_distance(total.phase, expected_phase) < 1e-9
        expected_amp = 3.0 if len(set(bits)) == 1 else 1.0
        assert total.amplitude == pytest.approx(expected_amp)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            superpose([])

    def test_rejects_mixed_frequencies(self):
        with pytest.raises(ValueError, match="equal frequencies"):
            superpose([Wave.logic(0, F), Wave.logic(0, 2 * F)])

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        phases), min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_matches_complex_sum(self, parts):
        waves = [Wave(a, p, F) for a, p in parts]
        total = superpose(waves)
        reference = sum((w.envelope for w in waves), 0j)
        assert total.envelope == pytest.approx(reference, abs=1e-9)


class TestInterferenceKind:
    def test_figure_2b_cases(self):
        a = Wave.logic(0, F)
        assert interference_kind(a, Wave.logic(0, F)) == "constructive"
        assert interference_kind(a, Wave.logic(1, F)) == "destructive"
        assert interference_kind(a, Wave(1.0, math.pi / 3, F)) == "partial"


class TestSamplingAndSplitting:
    def test_sample_peak_at_zero_phase(self):
        w = Wave.logic(0, F)
        assert w.sample(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_standing_pattern_cancels(self):
        times = np.linspace(0, 2 / F, 64)
        total = standing_pattern([Wave.logic(0, F), Wave.logic(1, F)], times)
        assert np.max(np.abs(total)) < 1e-12

    def test_split_conserves_power(self):
        w = Wave(1.0, 0.3, F)
        arm = w.split(3)
        assert 3 * arm.amplitude ** 2 == pytest.approx(w.amplitude ** 2)

    def test_attenuate_bounds(self):
        with pytest.raises(ValueError):
            Wave.logic(0, F).attenuate(1.5)

    def test_shifted(self):
        w = Wave.logic(0, F).shifted(math.pi)
        assert phase_distance(w.phase, math.pi) < 1e-12
