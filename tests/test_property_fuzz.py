"""Cross-module property and fuzz tests.

Broader invariants than the per-module suites: randomly generated
geometries, fields and circuits must round-trip / evaluate correctly.
"""

import io
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitSimulator, Netlist
from repro.core import (
    GateDimensions,
    TriangleMajorityGate,
    TriangleXorGate,
    paper_maj3_dimensions,
    segment_length,
    validate_phase_design,
    maj3_layout,
)
from repro.core.logic import input_patterns, majority, xor
from repro.io import OvfField, read_ovf, write_ovf
from repro.micromag import Mesh, normalize_field
from repro.physics import Wave, superpose


# ---------------------------------------------------------------------------
# OVF round trips over random meshes
# ---------------------------------------------------------------------------

mesh_shapes = st.tuples(st.integers(1, 6), st.integers(1, 6),
                        st.integers(1, 2))
cells = st.tuples(st.floats(1e-9, 10e-9), st.floats(1e-9, 10e-9),
                  st.floats(1e-10, 5e-9))


class TestOvfFuzz:
    @given(mesh_shapes, cells, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_any_mesh(self, shape, cell, seed):
        mesh = Mesh(cell_size=cell, shape=shape)
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(mesh.field_shape)
        normalize_field(data)
        buffer = io.StringIO()
        write_ovf(buffer, OvfField(mesh=mesh, data=data))
        buffer.seek(0)
        back = read_ovf(buffer)
        assert back.mesh.shape == mesh.shape
        assert np.allclose(back.data, data, atol=1e-8)


# ---------------------------------------------------------------------------
# Gate correctness over random lambda-multiple dimension sets
# ---------------------------------------------------------------------------

class TestGateDimensionFuzz:
    @given(st.floats(min_value=30e-9, max_value=150e-9),
           st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_any_valid_maj3_design_decodes(self, lam, n_d1, n_d3, n_stem):
        n_d2 = n_d1 + 8  # keep I3 placeable (d2 > d1/sqrt(2))
        dims = GateDimensions(
            wavelength=lam, width=0.8 * lam,
            d1=segment_length(n_d1, lam),
            d2=segment_length(n_d2, lam),
            d3=segment_length(n_d3, lam),
            d4=segment_length(1, lam),
            stem=segment_length(n_stem, lam))
        gate = TriangleMajorityGate(dimensions=dims, frequency=10e9)
        for bits in input_patterns(3):
            result = gate.evaluate(bits)
            assert result.correct, (bits, lam, n_d1)
            assert result.fanout_matched

    @given(st.floats(min_value=30e-9, max_value=150e-9),
           st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_any_valid_design_passes_phase_checks(self, lam, n_d1):
        dims = paper_maj3_dimensions(wavelength=lam, width=0.8 * lam)
        checks = validate_phase_design(maj3_layout(dims))
        assert all(checks.values())


# ---------------------------------------------------------------------------
# Random XOR-chain netlists evaluate to parity
# ---------------------------------------------------------------------------

class TestRandomCircuits:
    @given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=10),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_xor_tree(self, bits, seed):
        # Build a random reduction tree over XOR gates: any association
        # order computes the same parity.
        rng = np.random.default_rng(seed)
        net = Netlist("tree")
        frontier = [net.add_input(f"d{i}") for i in range(len(bits))]
        net.add_output("p")
        counter = 0
        while len(frontier) > 1:
            i = int(rng.integers(len(frontier)))
            a = frontier.pop(i)
            j = int(rng.integers(len(frontier)))
            b = frontier.pop(j)
            out = "p" if len(frontier) == 0 else f"t{counter}"
            net.add_gate(f"x{counter}", "XOR", [a, b], [out, None])
            frontier.append(out)
            counter += 1
        net.validate()
        sim = CircuitSimulator(net)
        inputs = {f"d{i}": b for i, b in enumerate(bits)}
        assert sim.run(inputs).outputs["p"] == xor(*bits)


# ---------------------------------------------------------------------------
# Interference invariants
# ---------------------------------------------------------------------------

class TestInterferenceInvariants:
    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=9)
           .filter(lambda bits: len(bits) % 2 == 1))
    @settings(max_examples=40)
    def test_odd_wave_count_majority(self, bits):
        # The paper's Section II-B claim: interference of an odd number
        # of equal waves with {0, pi} phases evaluates the majority.
        total = superpose([Wave.logic(b, 10e9) for b in bits])
        expected_phase = math.pi if majority(*bits) else 0.0
        assert math.isclose(math.cos(total.phase),
                            math.cos(expected_phase), abs_tol=1e-9)
        # Amplitude is |#zeros - #ones|.
        imbalance = abs(sum(1 for b in bits if b == 0)
                        - sum(1 for b in bits if b == 1))
        assert total.amplitude == pytest.approx(float(imbalance))

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=-math.pi, max_value=math.pi))
    @settings(max_examples=30)
    def test_global_phase_invariance(self, n, offset):
        # Shifting every input phase by a constant shifts the output
        # phase by the same constant and keeps the amplitude.
        waves = [Wave(1.0, (i % 2) * math.pi, 10e9) for i in range(n)]
        shifted = [w.shifted(offset) for w in waves]
        base = superpose(waves)
        moved = superpose(shifted)
        assert moved.amplitude == pytest.approx(base.amplitude, abs=1e-9)
        if base.amplitude > 1e-9:
            delta = math.remainder(moved.phase - base.phase - offset,
                                   2 * math.pi)
            assert abs(delta) < 1e-9


# ---------------------------------------------------------------------------
# Threshold-gate robustness to drive-level variation
# ---------------------------------------------------------------------------

class TestDriveLevelInvariance:
    @given(st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_xor_decision_scale_free(self, level):
        # All inputs scaled together: the normalised decision is
        # unchanged (the reference is measured at the same level).
        gate = TriangleXorGate()
        table = {}
        for bits in input_patterns(2):
            injections = {
                f"I{i + 1}": level * Wave.logic(b, 10e9).envelope
                for i, b in enumerate(bits)}
            env = gate.network.propagate(injections)
            table[bits] = abs(env["O1"])
        reference = table[(0, 0)]
        for bits in input_patterns(2):
            decoded = 0 if table[bits] / reference > 0.5 else 1
            assert decoded == xor(*bits)
