"""Boolean reference tests, including hypothesis identities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import logic
from repro.core.logic import (
    and_,
    check_bits,
    full_adder,
    input_patterns,
    majority,
    majority_derived,
    nand,
    nor,
    not_,
    or_,
    truth_table,
    xnor,
    xor,
)

bits = st.sampled_from([0, 1])


class TestMajority:
    def test_all_maj3_cases(self):
        expected = {
            (0, 0, 0): 0, (0, 0, 1): 0, (0, 1, 0): 0, (0, 1, 1): 1,
            (1, 0, 0): 0, (1, 0, 1): 1, (1, 1, 0): 1, (1, 1, 1): 1,
        }
        for pattern, value in expected.items():
            assert majority(*pattern) == value

    @given(bits, bits, bits)
    def test_self_dual(self, a, b, c):
        # MAJ(~a, ~b, ~c) = ~MAJ(a, b, c).
        assert majority(1 - a, 1 - b, 1 - c) == 1 - majority(a, b, c)

    @given(bits, bits, bits)
    def test_symmetric(self, a, b, c):
        assert majority(a, b, c) == majority(b, c, a) == majority(c, a, b)

    @given(bits, bits)
    def test_absorbs_pair(self, a, b):
        # MAJ(a, a, b) = a.
        assert majority(a, a, b) == a

    def test_five_input(self):
        assert majority(1, 1, 1, 0, 0) == 1
        assert majority(1, 1, 0, 0, 0) == 0

    def test_even_inputs_rejected(self):
        with pytest.raises(ValueError):
            majority(0, 1)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            majority(0, 1, 2)


class TestXorFamily:
    @given(bits, bits)
    def test_xor_commutative(self, a, b):
        assert xor(a, b) == xor(b, a)

    @given(bits, bits, bits)
    def test_xor_associative(self, a, b, c):
        assert xor(xor(a, b), c) == xor(a, xor(b, c))

    @given(bits)
    def test_xor_identity_and_cancel(self, a):
        assert xor(a, 0) == a
        assert xor(a, a) == 0

    @given(bits, bits)
    def test_xnor_is_complement(self, a, b):
        assert xnor(a, b) == 1 - xor(a, b)


class TestGateFunctions:
    @given(bits, bits)
    def test_demorgan(self, a, b):
        assert nand(a, b) == or_(1 - a, 1 - b)
        assert nor(a, b) == and_(1 - a, 1 - b)

    @given(bits)
    def test_not(self, a):
        assert not_(a) == 1 - a

    @given(bits, bits)
    def test_majority_derived_matches_reference(self, a, b):
        assert majority_derived("AND", a, b) == and_(a, b)
        assert majority_derived("OR", a, b) == or_(a, b)
        assert majority_derived("NAND", a, b) == nand(a, b)
        assert majority_derived("NOR", a, b) == nor(a, b)

    def test_unknown_derived_function(self):
        with pytest.raises(KeyError):
            majority_derived("XOR", 0, 1)


class TestUtilities:
    def test_truth_table_size(self):
        table = truth_table(xor, 2)
        assert len(table) == 4
        assert table[(1, 0)] == 1

    def test_input_patterns_order(self):
        patterns = input_patterns(2)
        assert patterns == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_check_bits(self):
        assert check_bits([0, 1, True]) == (0, 1, 1)
        with pytest.raises(ValueError):
            check_bits([0, 5])

    def test_truth_table_validation(self):
        with pytest.raises(ValueError):
            truth_table(xor, 0)


class TestFullAdder:
    @given(bits, bits, bits)
    def test_against_arithmetic(self, a, b, c):
        s, carry = full_adder(a, b, c)
        assert 2 * carry + s == a + b + c

    def test_carry_is_majority_sum_is_parity(self):
        for pattern in input_patterns(3):
            s, carry = full_adder(*pattern)
            assert carry == majority(*pattern)
            assert s == xor(*pattern)
