"""Post-processing tests: spectra and dispersion extraction."""

import math

import numpy as np
import pytest

from repro.micromag import (
    Mesh,
    centerline_signal,
    dominant_frequency,
    precession_amplitude_map,
    ringdown_spectrum,
    space_time_fft,
)


class TestRingdown:
    def test_single_tone(self):
        f0 = 12e9
        dt = 1e-12
        t = np.arange(2048) * dt
        signal = np.cos(2 * math.pi * f0 * t) * np.exp(-t / 1e-9)
        assert dominant_frequency(signal, dt) == pytest.approx(f0, rel=0.01)

    def test_two_tones_picks_stronger(self):
        dt = 1e-12
        t = np.arange(4096) * dt
        signal = (1.0 * np.cos(2 * math.pi * 8e9 * t)
                  + 0.3 * np.cos(2 * math.pi * 14e9 * t))
        assert dominant_frequency(signal, dt) == pytest.approx(8e9, rel=0.01)

    def test_spectrum_output_shapes(self):
        freqs, amps = ringdown_spectrum(np.random.default_rng(0)
                                        .standard_normal(256), 1e-12)
        assert len(freqs) == len(amps) == 129

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            ringdown_spectrum(np.zeros(4), 1e-12)

    def test_parabolic_refinement_beats_bin_width(self):
        # Off-bin frequency: refinement should land within half a bin.
        dt = 1e-12
        n = 1024
        df = 1.0 / (n * dt)
        f0 = 10e9 + 0.3 * df
        t = np.arange(n) * dt
        signal = np.cos(2 * math.pi * f0 * t)
        f_est = dominant_frequency(signal, dt)
        assert abs(f_est - f0) < 0.5 * df


class TestSpaceTimeFft:
    def test_plane_wave_ridge(self):
        # A single rightward plane wave must produce a ridge at (k0, f0).
        f0, lam = 10e9, 80e-9
        k0 = 2 * math.pi / lam
        dx, dt = 5e-9, 2e-12
        nx, nt = 256, 512
        x = np.arange(nx) * dx
        t = np.arange(nt) * dt
        signal = np.cos(2 * math.pi * f0 * t[:, None] - k0 * x[None, :])
        dmap = space_time_fft(signal, dx, dt)
        ks, fs = dmap.ridge(k_min=k0 / 4)
        idx = np.argmin(np.abs(ks - k0))
        assert fs[idx] == pytest.approx(f0, rel=0.05)

    def test_dispersive_pair_of_waves(self):
        # Two plane waves at different (k, f): ridge hits both.
        dx, dt = 5e-9, 2e-12
        nx, nt = 256, 512
        x = np.arange(nx) * dx
        t = np.arange(nt) * dt
        comps = [(10e9, 2 * math.pi / 100e-9), (20e9, 2 * math.pi / 50e-9)]
        signal = sum(np.cos(2 * math.pi * f * t[:, None] - k * x[None, :])
                     for f, k in comps)
        dmap = space_time_fft(signal, dx, dt)
        ks, fs = dmap.ridge(k_min=1e7)
        for f, k in comps:
            idx = np.argmin(np.abs(ks - k))
            assert fs[idx] == pytest.approx(f, rel=0.1)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            space_time_fft(np.zeros(16), 1e-9, 1e-12)


class TestHelpers:
    def test_centerline_extraction(self):
        mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(16, 9, 1))
        snaps = np.zeros((3, 3, 1, 9, 16))
        snaps[1, 0, 0, 4, :] = 7.0  # centre row, mx at t=1
        signal = centerline_signal(snaps, mesh, component=0)
        assert signal.shape == (3, 16)
        assert np.all(signal[1] == 7.0)
        assert np.all(signal[0] == 0.0)

    def test_centerline_validates_shape(self):
        mesh = Mesh(cell_size=(5e-9,) * 2 + (1e-9,), shape=(4, 4, 1))
        with pytest.raises(ValueError):
            centerline_signal(np.zeros((3, 4, 4)), mesh)

    def test_precession_amplitude(self):
        m = np.zeros((3, 1, 2, 2))
        m[0, 0, 0, 0] = 0.3
        m[1, 0, 0, 0] = 0.4
        amp = precession_amplitude_map(m)
        assert amp[0, 0, 0] == pytest.approx(0.5)

    def test_precession_amplitude_with_reference(self):
        m0 = np.zeros((3, 1, 1, 1))
        m0[0] = 0.1
        m = m0.copy()
        m[0] += 0.2
        amp = precession_amplitude_map(m, m0)
        assert amp[0, 0, 0] == pytest.approx(0.2)
